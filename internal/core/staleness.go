package core

import (
	"math"
	"math/bits"

	"kbt/internal/triple"
)

// This file maintains the per-unit staleness ledger behind the engine's
// confined settling sweeps.
//
// The engine caches every shard's E-step outputs between iterations and
// refreshes. A cached posterior goes stale when a parameter it was computed
// from moves — but only when one *it was computed from* moves. An item's
// Stage II scores read the accuracies of exactly the sources with a candidate
// triple on the item, and its Stage I vote sums read the extractor
// presence/absence votes — which the engine freezes until the R/Q movement
// behind them crosses Tol, so between vote refreshes the published extractor
// state does not move at all, no matter how the raw parameters drift.
//
// The ledger therefore tracks, per unit, the movement of what the E-step
// actually consumes:
//
//   - per source: |ΔA_w| accumulated every M-step (srcVote is recomputed from
//     the live accuracy each iteration), together with a bitmask of the
//     shards holding the source's candidate triples — the only shards whose
//     cached posteriors read A_w;
//   - per extractor: the published vote-parameter movement |ΔR_e| + |ΔQ_e|,
//     accumulated only when the votes are actually recomputed
//     (state.computeVotes). An extractor's absence vote reaches every triple
//     in every cell it attempts, so its reach is treated as global — the
//     conservative mask; at the coarse name granularity extractors span most
//     of the corpus anyway, and vote refreshes are already Tol-rationed.
//
// A unit's drift resets when an E-step pass covers every shard it can reach.
// The engine asks MarkStale for the shards whose accumulated relevant drift
// exceeds Tol and re-estimates only those — the settling sweep confined to
// the actually-stale fraction of the corpus, instead of the all-shards
// escalation that made warm refreshes O(corpus). The ledger persists across
// refreshes (extended append-only by NewEMFrom, remapped by dense-id prefix
// under FullRecompile), so sub-Tol residue left by a converged refresh keeps
// accumulating instead of being forgotten — many small refreshes can no
// longer compound into an unbounded cached-posterior lag.
//
// Contract: a settled shard's cached posteriors lag the published parameters
// by less than Tol of accumulated movement per relevant unit (the previous
// global scheme bounded the *sum over all units* by Tol; per-unit accounting
// trades that for confinement, bounding the lag by Tol times the handful of
// units an item actually reads). The engine refuses to declare convergence
// while any unit's drift stands at or above Tol — it runs one more confined
// settling pass instead — so the contract holds for every published
// converged result; only a MaxIter-capped unconverged refresh may publish
// residue, and the carried ledger re-anchors that at the next refresh's
// first pass.

// staleLedger is the per-unit drift state. Masks are srcMaskWords uint64
// words per source, bit si set when shard si holds one of the source's
// candidate triples.
type staleLedger struct {
	nShards, words int

	// itemShard caches triple.ShardOf for every data item, grown append-only
	// with the snapshot.
	itemShard []int32

	// srcMask is the per-source shard reach (nSrc × words); srcDrift the
	// accumulated |ΔA| since the source's shards were last all re-estimated.
	srcMask  []uint64
	srcDrift []float64

	// extDrift is the accumulated published vote-parameter movement
	// |ΔR| + |ΔQ| per extractor; rAt/qAt the values backing the currently
	// published votes (updated by computeVotes).
	extDrift []float64
	rAt, qAt []float64

	// scratch is a words-sized bitmask buffer for SettleShards.
	scratch []uint64
}

func (led *staleLedger) setSrcBit(w, si int) {
	led.srcMask[w*led.words+si/64] |= 1 << (si % 64)
}

// EnableStaleness builds the per-unit staleness ledger for nShards item
// shards (triple.ShardOf partitioning, matching Snapshot.Shards). Idempotent
// for an unchanged shard count; a changed count rebuilds from scratch. The
// engine enables it on every EM it constructs; core.Run never does, so the
// batch path carries no ledger overhead.
func (em *EM) EnableStaleness(nShards int) {
	st := em.st
	if st.ledger != nil && st.ledger.nShards == nShards {
		return
	}
	s := st.s
	led := &staleLedger{nShards: nShards, words: (nShards + 63) / 64}
	led.itemShard = make([]int32, len(s.Items))
	for d, key := range s.Items {
		led.itemShard[d] = int32(triple.ShardOf(key, nShards))
	}
	led.srcMask = make([]uint64, len(s.Sources)*led.words)
	for _, tr := range s.Triples {
		led.setSrcBit(tr.W, int(led.itemShard[tr.D]))
	}
	led.srcDrift = make([]float64, len(s.Sources))
	led.extDrift = make([]float64, len(s.Extractors))
	led.rAt = append([]float64(nil), st.r...)
	led.qAt = append([]float64(nil), st.q...)
	led.scratch = make([]uint64, led.words)
	st.ledger = led
}

// CarryStalenessFrom copies prev's accumulated drift and published-vote
// anchors by dense-id prefix — the FullRecompile path's counterpart of the
// ledger NewEMFrom extends in place, needed so the oracle makes the identical
// settling decisions. Both EMs must have staleness enabled.
func (em *EM) CarryStalenessFrom(prev *EM) {
	led, old := em.st.ledger, prev.st.ledger
	if led == nil || old == nil {
		return
	}
	copy(led.srcDrift, old.srcDrift)
	copy(led.extDrift, old.extDrift)
	copy(led.rAt, old.rAt)
	copy(led.qAt, old.qAt)
}

// AccumulateSourceDrift adds each source's accuracy movement since prevA (the
// caller's copy from the start of the iteration) to its drift. Call once per
// iteration, after the M-steps.
func (em *EM) AccumulateSourceDrift(prevA []float64) {
	led := em.st.ledger
	if led == nil {
		return
	}
	a := em.st.a
	for w := range prevA {
		if d := math.Abs(a[w] - prevA[w]); d != 0 {
			led.srcDrift[w] += d
		}
	}
}

// noteVoteRefresh accumulates the published vote-parameter movement at a vote
// recompute: the R/Q travel since the votes were last derived is exactly the
// staleness a frozen-vote E-step could not have seen. Called by computeVotes.
func (st *state) noteVoteRefresh() {
	led := st.ledger
	if led == nil {
		return
	}
	for e := range st.r {
		led.extDrift[e] += math.Abs(st.r[e]-led.rAt[e]) + math.Abs(st.q[e]-led.qAt[e])
		led.rAt[e], led.qAt[e] = st.r[e], st.q[e]
	}
}

// MarkStale sets mark[si] for every shard holding a unit whose accumulated
// drift has reached tol — the shards whose cached posteriors the staleness
// contract no longer covers — and reports how many entries it newly set.
// Excluded units are skipped: their parameters are frozen and enter no
// E-step (an inclusion flip escalates structurally before this is asked).
func (em *EM) MarkStale(tol float64, mark []bool) int {
	st := em.st
	led := st.ledger
	if led == nil {
		return 0
	}
	added := 0
	for e, drift := range led.extDrift {
		if drift >= tol && st.extIncluded[e] {
			// Published extractor votes moved beyond tolerance: their absence
			// mass reaches every attempted cell, so every shard is stale.
			for si := range mark {
				if !mark[si] {
					mark[si] = true
					added++
				}
			}
			return added
		}
	}
	for w, drift := range led.srcDrift {
		if drift < tol || !st.srcIncluded[w] {
			continue
		}
		base := w * led.words
		for k := 0; k < led.words; k++ {
			word := led.srcMask[base+k]
			for word != 0 {
				si := k*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if !mark[si] {
					mark[si] = true
					added++
				}
			}
		}
	}
	return added
}

// SettleShards records that an E-step pass re-estimated the shards in dirty:
// every unit whose whole reach was covered is re-anchored (drift reset). A
// full pass settles everything, including the globally-reaching extractors.
func (em *EM) SettleShards(dirty []int) {
	led := em.st.ledger
	if led == nil {
		return
	}
	if len(dirty) >= led.nShards {
		clear(led.srcDrift)
		clear(led.extDrift)
		return
	}
	clear(led.scratch)
	for _, si := range dirty {
		led.scratch[si/64] |= 1 << (si % 64)
	}
	for w := range led.srcDrift {
		if led.srcDrift[w] == 0 {
			continue
		}
		base := w * led.words
		covered := true
		for k := 0; k < led.words && covered; k++ {
			covered = led.srcMask[base+k]&^led.scratch[k] == 0
		}
		if covered {
			led.srcDrift[w] = 0
		}
	}
}

// SourceDrift and ExtractorVoteDrift expose the live accumulated-drift
// slices (read-only) for diagnostics and tests.
func (em *EM) SourceDrift() []float64 {
	if em.st.ledger == nil {
		return nil
	}
	return em.st.ledger.srcDrift
}

func (em *EM) ExtractorVoteDrift() []float64 {
	if em.st.ledger == nil {
		return nil
	}
	return em.st.ledger.extDrift
}

// extendLedger grows the ledger append-only with the snapshot extension —
// new items' shard assignments, new triples' reach bits, zero drift and
// current-parameter vote anchors for new units. Called by extendState after
// the parameter arrays have grown.
func (st *state) extendLedger(d triple.Delta) {
	led := st.ledger
	if led == nil {
		return
	}
	s := st.s
	for di := d.Items; di < len(s.Items); di++ {
		led.itemShard = append(led.itemShard, int32(triple.ShardOf(s.Items[di], led.nShards)))
	}
	led.srcMask = grow(led.srcMask, len(s.Sources)*led.words, 0)
	for ti := d.Triples; ti < len(s.Triples); ti++ {
		tr := s.Triples[ti]
		led.setSrcBit(tr.W, int(led.itemShard[tr.D]))
	}
	led.srcDrift = grow(led.srcDrift, len(s.Sources), 0)
	led.extDrift = grow(led.extDrift, len(s.Extractors), 0)
	for e := len(led.rAt); e < len(st.r); e++ {
		led.rAt = append(led.rAt, st.r[e])
		led.qAt = append(led.qAt, st.q[e])
	}
}
