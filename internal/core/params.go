package core

import "sync/atomic"

// This file implements copy-on-write per-unit parameter storage. The source
// and extractor parameter vectors (A, P, R, Q) and the per-source
// expected-triple sums used to be deep-copied into every published Result —
// O(units) per refresh even when a pass re-estimated a handful of units. At
// fine granularities the unit space is corpus-sized (per-page sources,
// per-pattern extractors), so the copies dominated small-ingest publication
// the same way the posterior copies did before genStore. The cure is the
// same: chunked immutable storage shared between generations, with dirty
// marks deciding which chunks a publication must actually copy.
//
// The working arrays (state.a/p/r/q) stay flat — the M-step hot loops index
// them densely. Every write goes through a set* helper that compares before
// storing: only a value that actually changed marks its chunk dirty. The
// comparison is exact float equality, which is what makes sharing effective —
// a delta M-step re-derives a source's accuracy from unchanged sufficient
// statistics bit-identically, so untouched regions of the unit space stay
// clean across arbitrarily many refreshes. BuildResultFrom then shares every
// clean, length-stable chunk with the previous generation by pointer and
// clears the marks, making the new generation the baseline.
//
// Marks are chunk-granular uint32s written with atomic stores: the M-steps
// derive different units concurrently, and two units of one chunk may mark it
// from different goroutines. Readers (publication, mark clearing) run after
// the worker pools have joined, so plain reads are ordered.

// unitChunk is the number of units per parameter chunk. Large enough that
// chunk headers are negligible against the flat arrays, small enough that one
// drifted unit's copy cost stays far below O(units).
const unitChunk = 512

// unitVec is an immutable chunked float vector — the published form of a
// per-unit parameter. Chunks may be shared with other generations; nothing
// may write through them.
type unitVec struct {
	n      int
	chunks [][]float64
}

// Len returns the number of units.
func (v unitVec) Len() int { return v.n }

// At returns unit i's value.
func (v unitVec) At(i int) float64 {
	return v.chunks[i/unitChunk][i%unitChunk]
}

// numUnitChunks returns the chunk count covering n units.
func numUnitChunks(n int) int { return (n + unitChunk - 1) / unitChunk }

// sliceVec wraps vals in chunk form without copying. The caller hands over
// ownership: vals must never be written again (the batch Run path, whose
// state dies with the call).
func sliceVec(vals []float64) unitVec {
	v := unitVec{n: len(vals), chunks: make([][]float64, numUnitChunks(len(vals)))}
	for ci := range v.chunks {
		lo := ci * unitChunk
		hi := min(lo+unitChunk, len(vals))
		v.chunks[ci] = vals[lo:hi:hi]
	}
	return v
}

// copyVec deep-copies vals into chunk form — the snapshot path (BuildResult),
// where the caller keeps mutating its arrays.
func copyVec(vals []float64) unitVec {
	return sliceVec(append([]float64(nil), vals...))
}

// buildUnitVec assembles a publication's parameter vector copy-on-write
// against prev: a chunk whose dirty mark is clear and whose unit span is
// unchanged is shared by pointer, everything else is copied from the working
// slice. Growth needs no marking discipline — a grown boundary chunk fails
// the length test and a wholly new chunk has no prev counterpart, so both
// copy.
func buildUnitVec(prev unitVec, work []float64, dirty []uint32) unitVec {
	n := len(work)
	v := unitVec{n: n, chunks: make([][]float64, numUnitChunks(n))}
	for ci := range v.chunks {
		lo := ci * unitChunk
		hi := min(lo+unitChunk, n)
		if ci < len(prev.chunks) && len(prev.chunks[ci]) == hi-lo && ci < len(dirty) && dirty[ci] == 0 {
			v.chunks[ci] = prev.chunks[ci]
			continue
		}
		v.chunks[ci] = append([]float64(nil), work[lo:hi]...)
	}
	return v
}

// markUnit records that unit i's value changed since the last publication.
// The load-before-store keeps an already-dirty chunk's cache line clean under
// repeated marking from the derive loops.
func markUnit(dirty []uint32, i int) {
	ci := i / unitChunk
	if atomic.LoadUint32(&dirty[ci]) == 0 {
		atomic.StoreUint32(&dirty[ci], 1)
	}
}

// cowVec is a unitVec under construction that starts fully shared with a
// previous generation and clones each chunk on its first write — the
// expected-triple delta fold, where only the sources of dirty shards' triples
// receive any adjustment.
type cowVec struct {
	v     unitVec
	owned []bool
}

// cowFrom readies a cowVec of n units over prev's chunks. Chunks prev does
// not cover (or covers at a different length — growth) are materialised
// immediately, new units zero-filled.
func cowFrom(prev unitVec, n int) cowVec {
	nc := numUnitChunks(n)
	c := cowVec{v: unitVec{n: n, chunks: make([][]float64, nc)}, owned: make([]bool, nc)}
	for ci := 0; ci < nc; ci++ {
		lo := ci * unitChunk
		hi := min(lo+unitChunk, n)
		if ci < len(prev.chunks) && len(prev.chunks[ci]) == hi-lo {
			c.v.chunks[ci] = prev.chunks[ci]
			continue
		}
		ck := make([]float64, hi-lo)
		if ci < len(prev.chunks) {
			copy(ck, prev.chunks[ci])
		}
		c.v.chunks[ci] = ck
		c.owned[ci] = true
	}
	return c
}

// Add folds d into unit i, cloning the chunk if it is still shared.
func (c *cowVec) Add(i int, d float64) {
	ci := i / unitChunk
	if !c.owned[ci] {
		c.v.chunks[ci] = append([]float64(nil), c.v.chunks[ci]...)
		c.owned[ci] = true
	}
	c.v.chunks[ci][i%unitChunk] += d
}

// inheritMarks seeds dst's dirty marks after CarryParamsFrom copied a prevN
// prefix of values into an n-unit table: a chunk wholly inside the copied
// prefix is exactly as dirty as the donor's (the values are bit-equal, so the
// donor's relation to its last publication transfers), everything else —
// boundary growth, new units — is dirty.
func inheritMarks(dst, src []uint32, prevN, n int) {
	for ci := range dst {
		if end := min((ci+1)*unitChunk, n); end <= prevN && ci < len(src) {
			dst[ci] = src[ci]
		} else {
			dst[ci] = 1
		}
	}
}
