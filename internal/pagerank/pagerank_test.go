package pagerank

import (
	"fmt"
	"math"
	"testing"
)

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(NewGraph(), DefaultOptions()); err == nil {
		t.Error("empty graph should error")
	}
	g := NewGraph()
	g.AddEdge("a", "b")
	bad := []Options{
		{Damping: 1, MaxIter: 10},
		{Damping: -0.1, MaxIter: 10},
		{Damping: 0.85, MaxIter: 0},
	}
	for i, o := range bad {
		if _, err := Compute(g, o); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestRankSumsToOne(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	g.AddEdge("a", "c")
	g.AddNode("dangling")
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Rank {
		if r < 0 {
			t.Fatalf("negative rank %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank sum = %v", sum)
	}
	if !res.Converged {
		t.Error("small graph should converge")
	}
}

func TestPopularNodeRanksHigher(t *testing.T) {
	g := NewGraph()
	// Many nodes link to "hub"; "leaf" gets no links.
	for i := 0; i < 20; i++ {
		g.AddEdge(fmt.Sprintf("n%d", i), "hub")
	}
	g.AddEdge("hub", "n0")
	g.AddNode("leaf")
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank[g.ID("hub")] <= res.Rank[g.ID("leaf")] {
		t.Errorf("hub %v should outrank leaf %v",
			res.Rank[g.ID("hub")], res.Rank[g.ID("leaf")])
	}
	top := res.TopK(g, 1)
	if top[0] != "hub" {
		t.Errorf("top node = %q", top[0])
	}
}

func TestSymmetricCycleUniform(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(res.Rank[i]-1.0/3) > 1e-6 {
			t.Errorf("cycle node %d rank = %v, want 1/3", i, res.Rank[i])
		}
		if math.Abs(res.Normalized[i]-1) > 1e-6 {
			t.Errorf("normalized = %v, want 1", res.Normalized[i])
		}
	}
}

func TestSelfLinksDropped(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "a")
	g.AddEdge("a", "b")
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// a's entire link mass goes to b; b is dangling so mass recycles.
	if res.Rank[g.ID("b")] <= res.Rank[g.ID("a")] {
		t.Errorf("b should outrank a: %v vs %v", res.Rank[g.ID("b")], res.Rank[g.ID("a")])
	}
}

func TestNormalizedInUnitRange(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 50; i++ {
		g.AddEdge(fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", (i*7+1)%50))
		g.AddEdge(fmt.Sprintf("x%d", i), "hub")
	}
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := 0.0
	for _, v := range res.Normalized {
		if v < 0 || v > 1 {
			t.Fatalf("normalized out of range: %v", v)
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen != 1 {
		t.Errorf("max normalized = %v, want 1", maxSeen)
	}
}

func TestPercentileRank(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 9; i++ {
		g.AddEdge(fmt.Sprintf("n%d", i), "top")
	}
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pct := res.PercentileRank()
	topPct := pct[g.ID("top")]
	if topPct < 0.85 {
		t.Errorf("top node percentile = %v", topPct)
	}
	// The nine identical sources share one percentile.
	p0 := pct[g.ID("n0")]
	for i := 1; i < 9; i++ {
		if pct[g.ID(fmt.Sprintf("n%d", i))] != p0 {
			t.Error("tied nodes must share a percentile")
		}
	}
	if p0 != 0 {
		t.Errorf("lowest tier percentile = %v, want 0", p0)
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("a")
	if g.AddNode("a") != a {
		t.Error("AddNode must be idempotent")
	}
	if g.ID("missing") != -1 {
		t.Error("missing node id should be -1")
	}
	if g.Node(a) != "a" {
		t.Error("Node roundtrip")
	}
}

func TestDanglingOnlyGraph(t *testing.T) {
	g := NewGraph()
	g.AddNode("a")
	g.AddNode("b")
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rank[0]-0.5) > 1e-9 || math.Abs(res.Rank[1]-0.5) > 1e-9 {
		t.Errorf("dangling-only ranks = %v", res.Rank)
	}
}
