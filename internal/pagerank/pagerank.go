// Package pagerank implements the classic PageRank algorithm (Brin & Page
// 1998) over a sparse web graph. The paper compares KBT against PageRank as
// an exogenous popularity signal (§5.4.1, Figure 10); this package provides
// the comparator over the simulated hyperlink graph.
package pagerank

import (
	"errors"
	"math"
	"sort"
)

// Graph is a directed hyperlink graph over string-named nodes (websites or
// webpages). Build it incrementally with AddEdge/AddNode.
type Graph struct {
	names []string
	idx   map[string]int
	out   [][]int32
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{idx: make(map[string]int)}
}

// AddNode ensures node exists and returns its id.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.idx[name]; ok {
		return i
	}
	i := len(g.names)
	g.idx[name] = i
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	return i
}

// AddEdge adds a directed link from -> to (self-links are dropped; parallel
// edges are kept, matching a page linking twice).
func (g *Graph) AddEdge(from, to string) {
	f, t := g.AddNode(from), g.AddNode(to)
	if f == t {
		return
	}
	g.out[f] = append(g.out[f], int32(t))
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// Node returns the name of node i.
func (g *Graph) Node(i int) string { return g.names[i] }

// ID returns the id of a node name, or -1.
func (g *Graph) ID(name string) int {
	if i, ok := g.idx[name]; ok {
		return i
	}
	return -1
}

// Options configures the power iteration.
type Options struct {
	// Damping is the probability of following a link (default 0.85).
	Damping float64
	// MaxIter bounds the power iterations (default 100).
	MaxIter int
	// Tol is the L1 convergence threshold (default 1e-9).
	Tol float64
}

// DefaultOptions returns the standard PageRank settings.
func DefaultOptions() Options {
	return Options{Damping: 0.85, MaxIter: 100, Tol: 1e-9}
}

// Result holds the computed ranks.
type Result struct {
	// Rank is the stationary probability per node (sums to 1).
	Rank []float64
	// Normalized is Rank scaled to [0,1] by the maximum (the paper
	// normalises PageRank scores to [0,1] for Figure 10).
	Normalized []float64
	// Iterations actually run; Converged reports the L1 criterion was met.
	Iterations int
	Converged  bool
}

// Compute runs power iteration with uniform teleportation and dangling-mass
// redistribution.
func Compute(g *Graph, opt Options) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	if opt.Damping < 0 || opt.Damping >= 1 {
		return nil, errors.New("pagerank: damping must be in [0,1)")
	}
	if opt.MaxIter < 1 {
		return nil, errors.New("pagerank: MaxIter must be >= 1")
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}

	res := &Result{}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		base := (1 - opt.Damping) / float64(n)
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			if len(g.out[u]) == 0 {
				dangling += rank[u]
				continue
			}
			share := opt.Damping * rank[u] / float64(len(g.out[u]))
			for _, v := range g.out[u] {
				next[v] += share
			}
		}
		spread := base + opt.Damping*dangling/float64(n)
		var delta float64
		for i := range next {
			next[i] += spread
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		res.Iterations = iter
		if delta < opt.Tol {
			res.Converged = true
			break
		}
	}

	res.Rank = rank
	res.Normalized = make([]float64, n)
	maxR := 0.0
	for _, r := range rank {
		if r > maxR {
			maxR = r
		}
	}
	if maxR > 0 {
		for i, r := range rank {
			res.Normalized[i] = r / maxR
		}
	}
	return res, nil
}

// TopK returns the k highest-ranked node names (ties broken by name for
// determinism).
func (r *Result) TopK(g *Graph, k int) []string {
	type nr struct {
		name string
		rank float64
	}
	all := make([]nr, g.NumNodes())
	for i := range all {
		all[i] = nr{g.Node(i), r.Rank[i]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rank != all[j].rank {
			return all[i].rank > all[j].rank
		}
		return all[i].name < all[j].name
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].name
	}
	return out
}

// PercentileRank returns, for each node, the fraction of nodes with strictly
// lower rank — the paper reports PageRank positions as percentiles ("top
// 15%", "bottom 50%").
func (r *Result) PercentileRank() []float64 {
	n := len(r.Rank)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.Rank[idx[a]] < r.Rank[idx[b]] })
	pct := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j < n && r.Rank[idx[j]] == r.Rank[idx[i]] {
			j++
		}
		// All ties get the same percentile: the count of strictly lower.
		p := float64(i) / float64(n)
		for k := i; k < j; k++ {
			pct[idx[k]] = p
		}
		i = j
	}
	return pct
}
