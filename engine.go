package kbt

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"kbt/internal/engine"
	"kbt/internal/triple"
)

// Sentinel errors for the lock-free generation queries (CopyDeps, Fused).
// Servers branch on these to pick status codes, so they are part of the API.
var (
	// ErrNoGeneration means no Refresh has published a generation yet.
	ErrNoGeneration = errors.New("kbt: no refresh has completed yet")
	// ErrCopyDetectDisabled means the engine was built without CopyDetect.
	ErrCopyDetectDisabled = errors.New("kbt: copy detection is not enabled on this engine")
	// ErrFusionDisabled means the engine was built without Fusion.
	ErrFusionDisabled = errors.New("kbt: fusion is not enabled on this engine")
	// ErrUnknownItem means the queried data item is not in the fused corpus.
	ErrUnknownItem = errors.New("kbt: unknown data item")
)

// EngineOptions configures NewEngine. Start from DefaultEngineOptions. The
// model knobs mirror Options; the engine additionally fixes a shard count
// and requires a granularity whose source units are pure functions of each
// record (GranularityAuto's split-and-merge reassigns units as data grows,
// so it is only available through the batch EstimateKBT).
type EngineOptions struct {
	// Granularity picks the source unit: GranularityWebsite (default),
	// GranularityPage or GranularityFinest. GranularityAuto is rejected.
	Granularity SourceGranularity
	// Shards is the number of item partitions for the incremental E-step
	// (default 8).
	Shards int

	// DomainSize, Iterations, MinSupport, MinReportableTriples,
	// UseConfidence, AllExtractorsVoteAbsence and Workers have the same
	// meaning as in Options.
	DomainSize               int
	Iterations               int
	MinSupport               int
	MinReportableTriples     float64
	UseConfidence            bool
	AllExtractorsVoteAbsence bool
	Workers                  int

	// Tol declares convergence when no parameter moves by more than this
	// between EM iterations (0 = the core default, 1e-9). Converged
	// refreshes stop early, and a warm Refresh whose ingest barely moves
	// the estimates returns after a single partial pass — production
	// deployments trading a little precision for steady-state refresh
	// latency should raise this to ~1e-4.
	Tol float64

	// FullRecompile forces every Refresh to recompile the snapshot over the
	// whole corpus, rebuild the EM working state from it, and aggregate
	// every M-step over the corpus — instead of extending the previous
	// snapshot and EM state and applying dirty-set deltas to the M-step
	// aggregates. The incremental paths reproduce this oracle (state
	// extension bit-identically, the delta aggregates to ≤1e-9), so it
	// stays off in production; it is kept as an equivalence oracle and
	// operational escape hatch.
	FullRecompile bool
	// FullAggregates keeps the incremental snapshot/state path but
	// aggregates the global M-steps over the whole corpus every iteration
	// instead of applying dirty-set deltas — the bit-exact middle point
	// between FullRecompile and the default.
	FullAggregates bool

	// CopyDetect maintains streaming copy detection across refreshes: each
	// generation publishes the source pairs whose shared mistakes suggest
	// one copies the other (Engine.CopyDeps), and detected copiers' votes
	// are discounted in the next refresh so copied content stops counting
	// as independent corroboration — the ACCU-COPY feedback of the paper's
	// reference [8], maintained incrementally from the touched shards only.
	CopyDetect bool
	// Fusion maintains the single-layer ACCU baseline (the paper's
	// SINGLELAYER comparison) as a streaming per-item posterior store over
	// the same extraction feed; Engine.Fused serves the fused value
	// posterior of any data item from the current generation.
	Fusion bool
}

// DefaultEngineOptions mirrors DefaultOptions at website granularity.
func DefaultEngineOptions() EngineOptions {
	return EngineOptions{
		Granularity:          GranularityWebsite,
		Shards:               8,
		DomainSize:           10,
		Iterations:           5,
		MinSupport:           3,
		MinReportableTriples: 5,
		UseConfidence:        true,
	}
}

// Engine estimates KBT incrementally over a growing stream of extractions:
// Ingest appends evidence, Refresh re-estimates. The first Refresh runs the
// full multi-layer model exactly as EstimateKBT does at the same
// granularity; later Refreshes warm-start from the previous posteriors and
// re-run the first inference pass only over the shards the new records
// touched. Safe for concurrent use; the read path (Current, TopSources,
// TopTriples, Stats) is lock-free — results are published as immutable
// generations behind an atomic pointer, so readers never block a running
// Refresh and a generation a reader holds stays valid across later
// refreshes.
type Engine struct {
	eng *engine.Engine
	opt EngineOptions
	// cur caches the Result wrapper of the latest published generation, so
	// every reader of a generation shares one set of memoized sorted views.
	cur atomic.Pointer[Result]

	// keyMu/keys implement IngestKeyed's dedup for the in-memory engine,
	// bounded at the default retention (the most recent 64Ki keys).
	// (DurableEngine keeps its own set, persisted through WAL entries and
	// checkpoint ops.)
	keyMu sync.Mutex
	keys  keyring
}

// NewEngine builds an empty incremental engine. Option validation and the
// mapping onto the internal engine/core options live in one place —
// EngineOptions.engineOptions in options.go.
func NewEngine(opt EngineOptions) (*Engine, error) {
	eopt, err := opt.engineOptions()
	if err != nil {
		return nil, err
	}
	return &Engine{eng: engine.New(eopt), opt: opt, keys: keyring{cap: defaultKeyRetention}}, nil
}

// Ingest validates and appends extractions; they take effect at the next
// Refresh. Extractions with empty identity fields, a confidence outside
// [0,1], or that map to an empty source/extractor unit under the engine's
// granularity are rejected with an error, and the whole batch is discarded —
// catching at the door what would otherwise compile into degenerate units
// and silently skew later refreshes.
func (e *Engine) Ingest(batch ...Extraction) error {
	recs := make([]triple.Record, len(batch))
	for i, x := range batch {
		recs[i] = x.record()
	}
	return e.eng.Ingest(recs...)
}

// IngestKeyed is Ingest with a client idempotency key: a batch whose key was
// already applied is acknowledged with nil without re-ingesting, so an
// at-least-once client can resend after an ambiguous failure. An empty key
// is a plain Ingest. The in-memory engine's dedup set lives only as long as
// the process; DurableEngine.IngestKeyed persists its keys across recovery.
func (e *Engine) IngestKeyed(key string, batch ...Extraction) error {
	if key == "" {
		return e.Ingest(batch...)
	}
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	if e.keys.has(key) {
		return nil
	}
	if err := e.Ingest(batch...); err != nil {
		return err
	}
	e.keys.add(key)
	return nil
}

// Validate checks a batch against the same per-record validation Ingest
// performs, without appending anything. Multi-lane servers use it to refuse
// a malformed batch whole before splitting it across lanes.
func (e *Engine) Validate(batch ...Extraction) error {
	recs := make([]triple.Record, len(batch))
	for i, x := range batch {
		recs[i] = x.record()
	}
	return e.eng.Validate(recs...)
}

// Len returns the number of extractions ingested so far.
func (e *Engine) Len() int { return e.eng.Len() }

// Pending returns the number of extractions awaiting a Refresh.
func (e *Engine) Pending() int { return e.eng.Pending() }

// Refresh re-estimates the model and returns the updated result, with the
// same accessors EstimateKBT's Result provides.
func (e *Engine) Refresh() (*Result, error) {
	r, err := e.eng.Refresh()
	if err != nil {
		return nil, err
	}
	return e.wrap(r), nil
}

// wrap returns the shared Result wrapper for a published generation,
// building and caching it on first sight. Sharing the wrapper is what
// makes the memoized sorted views per-generation instead of per-call; a
// racing reader that briefly re-wraps the same generation only duplicates
// that memo, never its contents.
func (e *Engine) wrap(r *engine.Result) *Result {
	cached := e.cur.Load()
	if cached != nil && cached.res == r.Inference {
		return cached
	}
	w := &Result{
		snap:     r.Snapshot,
		res:      r.Inference,
		opt:      Options{MinReportableTriples: e.opt.MinReportableTriples},
		copyDeps: r.CopyDeps,
	}
	// Install only if the cache still holds what we loaded: a reader that
	// raced a Refresh must not evict the newer generation's wrapper (and
	// its warmed memoized views) with an older one.
	e.cur.CompareAndSwap(cached, w)
	return w
}

// Current returns the result of the most recent Refresh without performing
// any estimation work, or false before the first one. The read is
// lock-free: it never blocks a concurrent Refresh, and the returned
// generation stays valid (and internally consistent) after any number of
// later refreshes.
func (e *Engine) Current() (*Result, bool) {
	r := e.eng.Last()
	if r == nil {
		return nil, false
	}
	return e.wrap(r), true
}

// TopSources returns the k most trustworthy sources of the current
// generation (k <= 0 means all), or false before the first Refresh. See
// Result.TopSources.
func (e *Engine) TopSources(k int) ([]Source, bool) {
	r, ok := e.Current()
	if !ok {
		return nil, false
	}
	return r.TopSources(k), true
}

// TopTriples returns the k most probable covered triples of the current
// generation (k <= 0 means all), or false before the first Refresh. See
// Result.TopTriples.
func (e *Engine) TopTriples(k int) ([]TripleVerdict, bool) {
	r, ok := e.Current()
	if !ok {
		return nil, false
	}
	return r.TopTriples(k), true
}

// CopyDeps returns the current generation's copy-dependence list, strongest
// first — the streaming counterpart of Result.DetectCopying, maintained
// incrementally across refreshes instead of recomputed from the corpus. The
// read is lock-free (a single atomic generation load plus a memoized
// conversion shared by every reader of the generation). Returns
// ErrCopyDetectDisabled when the engine was built without CopyDetect, and
// ErrNoGeneration before the first Refresh.
func (e *Engine) CopyDeps() ([]CopyDependence, error) {
	if !e.opt.CopyDetect {
		return nil, ErrCopyDetectDisabled
	}
	r := e.eng.Last()
	if r == nil {
		return nil, ErrNoGeneration
	}
	w := e.wrap(r)
	w.copyOnce.Do(func() {
		out := make([]CopyDependence, len(w.copyDeps))
		for i, d := range w.copyDeps {
			out[i] = CopyDependence{
				SourceA:    displayLabel(r.Snapshot.Sources[d.A]),
				SourceB:    displayLabel(r.Snapshot.Sources[d.B]),
				Posterior:  d.Posterior,
				SharedTrue: d.SharedTrue, SharedFalse: d.SharedFalse, Differ: d.Differ,
			}
		}
		w.copyView = out
	})
	return w.copyView, nil
}

// FusedValue is one candidate value of a fused data item.
type FusedValue struct {
	Object      string
	Probability float64
}

// FusedItem is the single-layer fused posterior of one data item: the
// candidate values most probable first, the probability mass left on
// unobserved domain values, and whether any participating provenance covered
// the item at all.
type FusedItem struct {
	Subject, Predicate string
	Values             []FusedValue
	RestMass           float64
	Covered            bool
}

// Fused returns the current generation's fused posterior for one data item,
// identified as "subject|predicate" (the display form used throughout the
// API). The read is lock-free against concurrent refreshes. Returns
// ErrFusionDisabled when the engine was built without Fusion,
// ErrNoGeneration before the first Refresh, and ErrUnknownItem when no such
// item exists in the fused corpus.
func (e *Engine) Fused(item string) (FusedItem, error) {
	if !e.opt.Fusion {
		return FusedItem{}, ErrFusionDisabled
	}
	r := e.eng.Last()
	if r == nil || r.Fusion == nil || r.FusionSnap == nil {
		return FusedItem{}, ErrNoGeneration
	}
	snap, fres := r.FusionSnap, r.Fusion
	d := resolveItem(snap, item)
	if d < 0 {
		return FusedItem{}, ErrUnknownItem
	}
	subj, pred := splitItem(snap.Items[d])
	out := FusedItem{
		Subject:   subj,
		Predicate: pred,
		RestMass:  fres.RestMass[d],
		Covered:   fres.CoveredItem[d],
		Values:    make([]FusedValue, 0, len(snap.ItemValues[d])),
	}
	for k, v := range snap.ItemValues[d] {
		out.Values = append(out.Values, FusedValue{
			Object:      snap.Values[v],
			Probability: fres.ValueProb[d][k],
		})
	}
	sort.Slice(out.Values, func(i, j int) bool {
		if out.Values[i].Probability != out.Values[j].Probability {
			return out.Values[i].Probability > out.Values[j].Probability
		}
		return out.Values[i].Object < out.Values[j].Object
	})
	return out, nil
}

// resolveItem maps an item label to its dense id: first the internal
// subject\x1fpredicate form, then every "|" reading of the display form
// (each probe is an O(1) interning lookup, so even pathological labels with
// many '|' characters stay cheap).
func resolveItem(snap *triple.Snapshot, item string) int {
	if subj, pred := splitItem(item); pred != "" {
		if d := snap.ItemID(subj, pred); d >= 0 {
			return d
		}
	}
	for i := 0; i < len(item); i++ {
		if item[i] != '|' {
			continue
		}
		if d := snap.ItemID(item[:i], item[i+1:]); d >= 0 {
			return d
		}
	}
	return -1
}

// RefreshStats describes the work the most recent Refresh performed.
type RefreshStats struct {
	// Warm reports whether the refresh reused the previous posteriors.
	Warm bool
	// Extended reports whether the refresh built its snapshot by extending
	// the previous one (O(ingest)) rather than recompiling the corpus. False
	// on a NoOp refresh, which did neither.
	Extended bool
	// NoOp reports that the refresh had nothing to do — no pending
	// extractions and an already-converged estimate — and served the cached
	// result unchanged.
	NoOp bool
	// FirstPassShards of TotalShards were re-estimated in the first EM
	// iteration; a small fraction means the ingest stayed local.
	FirstPassShards, TotalShards int
	// SettledShards is the number of shards no EM iteration of the refresh
	// re-estimated: their cached posteriors were already within the staleness
	// tolerance of the published parameters, so the per-unit drift ledger let
	// the settling sweeps skip them. TotalShards - SettledShards shards were
	// touched at least once; SettledShards == 0 means some unit's drift (or a
	// structural change) forced a full pass.
	SettledShards int
	// PartialShards is the number of touched shards that were only ever
	// re-estimated at sub-shard item-range granularity — their settled
	// remainder never ran.
	PartialShards int
	// Escalations counts the EM iterations whose E-step widened beyond the
	// ingest footprint to re-anchor shards holding above-tolerance
	// accumulated parameter drift.
	Escalations int
	// Iterations is the number of EM iterations run; Converged reports
	// whether the parameters settled before the iteration cap.
	Iterations int
	Converged  bool
	// AggDeltaSteps / AggFullSteps count the global M-step stage invocations
	// that updated the incremental aggregates by dirty-set deltas
	// respectively re-aggregated over the corpus (both zero under
	// FullRecompile / FullAggregates).
	AggDeltaSteps, AggFullSteps int
	// CopyPairs is the number of copy dependencies the generation publishes
	// (zero when CopyDetect is off). FusedItems / FusionIterations report
	// the fusion work of the refresh: distinct items re-fused and fusion EM
	// iterations run (zero when Fusion is off, and on a NoOp refresh).
	CopyPairs, FusedItems, FusionIterations int
}

// Stats reports the most recent Refresh, or false before the first one.
func (e *Engine) Stats() (RefreshStats, bool) {
	r := e.eng.Last()
	if r == nil {
		return RefreshStats{}, false
	}
	return RefreshStats{
		Warm:             r.Warm,
		Extended:         r.Extended,
		NoOp:             r.NoOp,
		FirstPassShards:  r.FirstPassShards,
		TotalShards:      r.TotalShards,
		SettledShards:    r.SettledShards,
		PartialShards:    r.PartialShards,
		Escalations:      r.Escalations,
		Iterations:       r.Inference.Iterations,
		Converged:        r.Inference.Converged,
		AggDeltaSteps:    r.AggDeltaSteps,
		AggFullSteps:     r.AggFullSteps,
		CopyPairs:        r.CopyPairs,
		FusedItems:       r.FusedItems,
		FusionIterations: r.FusionIterations,
	}, true
}
