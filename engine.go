package kbt

import (
	"sync/atomic"

	"kbt/internal/engine"
	"kbt/internal/triple"
)

// EngineOptions configures NewEngine. Start from DefaultEngineOptions. The
// model knobs mirror Options; the engine additionally fixes a shard count
// and requires a granularity whose source units are pure functions of each
// record (GranularityAuto's split-and-merge reassigns units as data grows,
// so it is only available through the batch EstimateKBT).
type EngineOptions struct {
	// Granularity picks the source unit: GranularityWebsite (default),
	// GranularityPage or GranularityFinest. GranularityAuto is rejected.
	Granularity SourceGranularity
	// Shards is the number of item partitions for the incremental E-step
	// (default 8).
	Shards int

	// DomainSize, Iterations, MinSupport, MinReportableTriples,
	// UseConfidence, AllExtractorsVoteAbsence and Workers have the same
	// meaning as in Options.
	DomainSize               int
	Iterations               int
	MinSupport               int
	MinReportableTriples     float64
	UseConfidence            bool
	AllExtractorsVoteAbsence bool
	Workers                  int

	// Tol declares convergence when no parameter moves by more than this
	// between EM iterations (0 = the core default, 1e-9). Converged
	// refreshes stop early, and a warm Refresh whose ingest barely moves
	// the estimates returns after a single partial pass — production
	// deployments trading a little precision for steady-state refresh
	// latency should raise this to ~1e-4.
	Tol float64

	// FullRecompile forces every Refresh to recompile the snapshot over the
	// whole corpus, rebuild the EM working state from it, and aggregate
	// every M-step over the corpus — instead of extending the previous
	// snapshot and EM state and applying dirty-set deltas to the M-step
	// aggregates. The incremental paths reproduce this oracle (state
	// extension bit-identically, the delta aggregates to ≤1e-9), so it
	// stays off in production; it is kept as an equivalence oracle and
	// operational escape hatch.
	FullRecompile bool
	// FullAggregates keeps the incremental snapshot/state path but
	// aggregates the global M-steps over the whole corpus every iteration
	// instead of applying dirty-set deltas — the bit-exact middle point
	// between FullRecompile and the default.
	FullAggregates bool
}

// DefaultEngineOptions mirrors DefaultOptions at website granularity.
func DefaultEngineOptions() EngineOptions {
	return EngineOptions{
		Granularity:          GranularityWebsite,
		Shards:               8,
		DomainSize:           10,
		Iterations:           5,
		MinSupport:           3,
		MinReportableTriples: 5,
		UseConfidence:        true,
	}
}

// Engine estimates KBT incrementally over a growing stream of extractions:
// Ingest appends evidence, Refresh re-estimates. The first Refresh runs the
// full multi-layer model exactly as EstimateKBT does at the same
// granularity; later Refreshes warm-start from the previous posteriors and
// re-run the first inference pass only over the shards the new records
// touched. Safe for concurrent use; the read path (Current, TopSources,
// TopTriples, Stats) is lock-free — results are published as immutable
// generations behind an atomic pointer, so readers never block a running
// Refresh and a generation a reader holds stays valid across later
// refreshes.
type Engine struct {
	eng *engine.Engine
	opt EngineOptions
	// cur caches the Result wrapper of the latest published generation, so
	// every reader of a generation shares one set of memoized sorted views.
	cur atomic.Pointer[Result]
}

// NewEngine builds an empty incremental engine. Option validation and the
// mapping onto the internal engine/core options live in one place —
// EngineOptions.engineOptions in options.go.
func NewEngine(opt EngineOptions) (*Engine, error) {
	eopt, err := opt.engineOptions()
	if err != nil {
		return nil, err
	}
	return &Engine{eng: engine.New(eopt), opt: opt}, nil
}

// Ingest validates and appends extractions; they take effect at the next
// Refresh. Extractions with empty identity fields, a confidence outside
// [0,1], or that map to an empty source/extractor unit under the engine's
// granularity are rejected with an error, and the whole batch is discarded —
// catching at the door what would otherwise compile into degenerate units
// and silently skew later refreshes.
func (e *Engine) Ingest(batch ...Extraction) error {
	recs := make([]triple.Record, len(batch))
	for i, x := range batch {
		recs[i] = x.record()
	}
	return e.eng.Ingest(recs...)
}

// Validate checks a batch against the same per-record validation Ingest
// performs, without appending anything. Multi-lane servers use it to refuse
// a malformed batch whole before splitting it across lanes.
func (e *Engine) Validate(batch ...Extraction) error {
	recs := make([]triple.Record, len(batch))
	for i, x := range batch {
		recs[i] = x.record()
	}
	return e.eng.Validate(recs...)
}

// Len returns the number of extractions ingested so far.
func (e *Engine) Len() int { return e.eng.Len() }

// Pending returns the number of extractions awaiting a Refresh.
func (e *Engine) Pending() int { return e.eng.Pending() }

// Refresh re-estimates the model and returns the updated result, with the
// same accessors EstimateKBT's Result provides.
func (e *Engine) Refresh() (*Result, error) {
	r, err := e.eng.Refresh()
	if err != nil {
		return nil, err
	}
	return e.wrap(r), nil
}

// wrap returns the shared Result wrapper for a published generation,
// building and caching it on first sight. Sharing the wrapper is what
// makes the memoized sorted views per-generation instead of per-call; a
// racing reader that briefly re-wraps the same generation only duplicates
// that memo, never its contents.
func (e *Engine) wrap(r *engine.Result) *Result {
	cached := e.cur.Load()
	if cached != nil && cached.res == r.Inference {
		return cached
	}
	w := &Result{
		snap: r.Snapshot,
		res:  r.Inference,
		opt:  Options{MinReportableTriples: e.opt.MinReportableTriples},
	}
	// Install only if the cache still holds what we loaded: a reader that
	// raced a Refresh must not evict the newer generation's wrapper (and
	// its warmed memoized views) with an older one.
	e.cur.CompareAndSwap(cached, w)
	return w
}

// Current returns the result of the most recent Refresh without performing
// any estimation work, or false before the first one. The read is
// lock-free: it never blocks a concurrent Refresh, and the returned
// generation stays valid (and internally consistent) after any number of
// later refreshes.
func (e *Engine) Current() (*Result, bool) {
	r := e.eng.Last()
	if r == nil {
		return nil, false
	}
	return e.wrap(r), true
}

// TopSources returns the k most trustworthy sources of the current
// generation (k <= 0 means all), or false before the first Refresh. See
// Result.TopSources.
func (e *Engine) TopSources(k int) ([]Source, bool) {
	r, ok := e.Current()
	if !ok {
		return nil, false
	}
	return r.TopSources(k), true
}

// TopTriples returns the k most probable covered triples of the current
// generation (k <= 0 means all), or false before the first Refresh. See
// Result.TopTriples.
func (e *Engine) TopTriples(k int) ([]TripleVerdict, bool) {
	r, ok := e.Current()
	if !ok {
		return nil, false
	}
	return r.TopTriples(k), true
}

// RefreshStats describes the work the most recent Refresh performed.
type RefreshStats struct {
	// Warm reports whether the refresh reused the previous posteriors.
	Warm bool
	// Extended reports whether the refresh built its snapshot by extending
	// the previous one (O(ingest)) rather than recompiling the corpus. False
	// on a NoOp refresh, which did neither.
	Extended bool
	// NoOp reports that the refresh had nothing to do — no pending
	// extractions and an already-converged estimate — and served the cached
	// result unchanged.
	NoOp bool
	// FirstPassShards of TotalShards were re-estimated in the first EM
	// iteration; a small fraction means the ingest stayed local.
	FirstPassShards, TotalShards int
	// SettledShards is the number of shards no EM iteration of the refresh
	// re-estimated: their cached posteriors were already within the staleness
	// tolerance of the published parameters, so the per-unit drift ledger let
	// the settling sweeps skip them. TotalShards - SettledShards shards were
	// touched at least once; SettledShards == 0 means some unit's drift (or a
	// structural change) forced a full pass.
	SettledShards int
	// Escalations counts the EM iterations whose E-step widened beyond the
	// ingest footprint to re-anchor shards holding above-tolerance
	// accumulated parameter drift.
	Escalations int
	// Iterations is the number of EM iterations run; Converged reports
	// whether the parameters settled before the iteration cap.
	Iterations int
	Converged  bool
	// AggDeltaSteps / AggFullSteps count the global M-step stage invocations
	// that updated the incremental aggregates by dirty-set deltas
	// respectively re-aggregated over the corpus (both zero under
	// FullRecompile / FullAggregates).
	AggDeltaSteps, AggFullSteps int
}

// Stats reports the most recent Refresh, or false before the first one.
func (e *Engine) Stats() (RefreshStats, bool) {
	r := e.eng.Last()
	if r == nil {
		return RefreshStats{}, false
	}
	return RefreshStats{
		Warm:            r.Warm,
		Extended:        r.Extended,
		NoOp:            r.NoOp,
		FirstPassShards: r.FirstPassShards,
		TotalShards:     r.TotalShards,
		SettledShards:   r.SettledShards,
		Escalations:     r.Escalations,
		Iterations:      r.Inference.Iterations,
		Converged:       r.Inference.Converged,
		AggDeltaSteps:   r.AggDeltaSteps,
		AggFullSteps:    r.AggFullSteps,
	}, true
}
