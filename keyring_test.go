package kbt

import (
	"fmt"
	"reflect"
	"testing"
)

func TestKeyring(t *testing.T) {
	k := keyring{cap: 3}
	if k.has("") || k.has("a") || k.len() != 0 {
		t.Fatal("empty ring retains something")
	}
	k.add("") // never retained
	if k.len() != 0 {
		t.Fatal("empty key retained")
	}
	for _, key := range []string{"a", "b", "c"} {
		k.add(key)
	}
	k.add("b") // re-add does not refresh the key's age
	if !reflect.DeepEqual(k.keys(), []string{"a", "b", "c"}) {
		t.Fatalf("keys = %v", k.keys())
	}
	k.add("d") // evicts "a", the oldest
	if k.has("a") || !k.has("b") || !k.has("d") || k.len() != 3 {
		t.Fatalf("after eviction: keys=%v", k.keys())
	}
	if !reflect.DeepEqual(k.keys(), []string{"b", "c", "d"}) {
		t.Fatalf("order after eviction: %v", k.keys())
	}
	// An evicted key re-adds as new — and pushes the window forward.
	k.add("a")
	if !reflect.DeepEqual(k.keys(), []string{"c", "d", "a"}) {
		t.Fatalf("re-add of evicted key: %v", k.keys())
	}

	// cap <= 0 never evicts.
	var unbounded keyring
	for i := 0; i < 1000; i++ {
		unbounded.add(fmt.Sprintf("k-%d", i))
	}
	if unbounded.len() != 1000 || !unbounded.has("k-0") {
		t.Fatalf("unbounded ring evicted: len=%d", unbounded.len())
	}
}
