package kbt

import (
	"errors"
	"fmt"
	"testing"
)

// copierExtractions plants five mostly-independent sites, an "orig" site
// with a distinctive mistake on every third item, and a "copier" site
// echoing orig verbatim — mistakes included. Two extractors corroborate
// every record so extraction correctness stays high even for false values:
// copy detection reasons over what sources claim, and a claim must survive
// the extraction-correctness filter (cProb ≥ ½) to count as provided.
func copierExtractions() []Extraction {
	const nItems = 40
	var out []Extraction
	value := func(site, i int) string {
		switch {
		case site < 5 && (i+site)%7 == 0:
			return fmt.Sprintf("err%d", site)
		case site >= 5 && i%3 == 0:
			return "wrong"
		default:
			return fmt.Sprintf("true%d", i)
		}
	}
	for site := 0; site < 7; site++ {
		website := fmt.Sprintf("site%d.com", site)
		if site == 5 {
			website = "orig.com"
		} else if site == 6 {
			website = "copier.com"
		}
		for i := 0; i < nItems; i++ {
			for _, extractor := range []string{"E1", "E2"} {
				out = append(out, Extraction{
					Extractor: extractor, Website: website, Page: website + "/x",
					Subject: fmt.Sprintf("S%d", i), Predicate: "p",
					Object: value(site, i), Confidence: 0.9,
				})
			}
		}
	}
	return out
}

// TestEngineCopyDepsAndFused exercises the streaming copy-detection and
// fusion queries end to end through the public engine API: gating errors
// when the layers are off or no generation exists, the planted copier pair
// in CopyDeps, per-generation memoization, fused item lookups in both label
// forms, and the new refresh-stats counters.
func TestEngineCopyDepsAndFused(t *testing.T) {
	// Disabled layers gate with the sentinel errors regardless of state.
	plain, err := NewEngine(DefaultEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.CopyDeps(); !errors.Is(err, ErrCopyDetectDisabled) {
		t.Fatalf("CopyDeps on plain engine: %v, want ErrCopyDetectDisabled", err)
	}
	if _, err := plain.Fused("S0|p"); !errors.Is(err, ErrFusionDisabled) {
		t.Fatalf("Fused on plain engine: %v, want ErrFusionDisabled", err)
	}

	opt := DefaultEngineOptions()
	opt.MinSupport = 1
	opt.CopyDetect = true
	opt.Fusion = true
	eng, err := NewEngine(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CopyDeps(); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("CopyDeps before refresh: %v, want ErrNoGeneration", err)
	}
	if _, err := eng.Fused("S0|p"); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("Fused before refresh: %v, want ErrNoGeneration", err)
	}

	if err := eng.Ingest(copierExtractions()...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Refresh(); err != nil {
		t.Fatal(err)
	}

	deps, err := eng.CopyDeps()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deps {
		pair := map[string]bool{d.SourceA: true, d.SourceB: true}
		if pair["orig.com"] && pair["copier.com"] {
			found = true
			if d.Posterior < 0.9 {
				t.Fatalf("orig/copier posterior %g, want ≥ 0.9", d.Posterior)
			}
			if d.SharedFalse == 0 {
				t.Fatal("orig/copier dependence reports no shared false values")
			}
		}
	}
	if !found {
		t.Fatalf("planted orig/copier pair missing from CopyDeps: %+v", deps)
	}
	again, err := eng.CopyDeps()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(deps) || (len(deps) > 0 && &again[0] != &deps[0]) {
		t.Fatal("CopyDeps is not memoized per generation")
	}

	for _, label := range []string{"S1|p", "S1\x1fp"} {
		fi, err := eng.Fused(label)
		if err != nil {
			t.Fatalf("Fused(%q): %v", label, err)
		}
		if fi.Subject != "S1" || fi.Predicate != "p" || !fi.Covered {
			t.Fatalf("Fused(%q) = %+v, want covered S1/p", label, fi)
		}
		if len(fi.Values) == 0 {
			t.Fatalf("Fused(%q) returned no values", label)
		}
		for i := 1; i < len(fi.Values); i++ {
			if fi.Values[i].Probability > fi.Values[i-1].Probability {
				t.Fatalf("Fused(%q) values not sorted: %+v", label, fi.Values)
			}
		}
		if fi.Values[0].Object != "true1" {
			t.Fatalf("Fused(%q) top value %q, want true1", label, fi.Values[0].Object)
		}
	}
	if _, err := eng.Fused("no-such|p"); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("Fused on unknown item: %v, want ErrUnknownItem", err)
	}
	if _, err := eng.Fused("bare-label"); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("Fused on separator-free label: %v, want ErrUnknownItem", err)
	}

	stats, ok := eng.Stats()
	if !ok {
		t.Fatal("no stats after refresh")
	}
	if stats.CopyPairs != len(deps) {
		t.Fatalf("stats.CopyPairs = %d, want %d", stats.CopyPairs, len(deps))
	}
	if stats.FusedItems == 0 || stats.FusionIterations == 0 {
		t.Fatalf("fusion stats report no work: %+v", stats)
	}
}
