package kbt

import (
	"reflect"
	"testing"

	"kbt/internal/core"
	"kbt/internal/triple"
)

// TestEngineOptionsRoundTrip pins the single conversion point in options.go:
// every public EngineOptions knob, set to a distinct sentinel, must land on
// its internal engine/core field. A knob that silently drops on the floor in
// the conversion fails here, which is the regression the old triplicated
// field-by-field mirrors (kbt → engine → core, hand-copied in three files)
// invited.
func TestEngineOptionsRoundTrip(t *testing.T) {
	in := EngineOptions{
		Granularity:              GranularityPage,
		Shards:                   13,
		DomainSize:               7,
		Iterations:               9,
		MinSupport:               4,
		MinReportableTriples:     2.5, // read by the Result wrapper, not converted
		UseConfidence:            true,
		AllExtractorsVoteAbsence: true,
		Workers:                  3,
		Tol:                      0.125,
		FullRecompile:            true,
		FullAggregates:           true,
	}
	eopt, err := in.engineOptions()
	if err != nil {
		t.Fatal(err)
	}
	if eopt.Shards != 13 {
		t.Errorf("Shards: got %d, want 13", eopt.Shards)
	}
	if got, want := reflect.ValueOf(eopt.SourceKey).Pointer(), reflect.ValueOf(triple.SourceKeyPage).Pointer(); got != want {
		t.Error("SourceKey: GranularityPage did not map to triple.SourceKeyPage")
	}
	if got, want := reflect.ValueOf(eopt.ExtractorKey).Pointer(), reflect.ValueOf(triple.ExtractorKeyName).Pointer(); got != want {
		t.Error("ExtractorKey: GranularityPage did not map to triple.ExtractorKeyName")
	}
	if eopt.Workers != 3 {
		t.Errorf("Workers: got %d, want 3", eopt.Workers)
	}
	if !eopt.FullRecompile {
		t.Error("FullRecompile did not carry")
	}
	if !eopt.FullAggregates {
		t.Error("FullAggregates did not carry")
	}
	if eopt.Core.N != 7 {
		t.Errorf("Core.N: got %d, want 7", eopt.Core.N)
	}
	if eopt.Core.MaxIter != 9 {
		t.Errorf("Core.MaxIter: got %d, want 9", eopt.Core.MaxIter)
	}
	if eopt.Core.MinSourceSupport != 4 || eopt.Core.MinExtractorSupport != 4 {
		t.Errorf("Core min support: got (%d, %d), want (4, 4)",
			eopt.Core.MinSourceSupport, eopt.Core.MinExtractorSupport)
	}
	if !eopt.Core.UseConfidence {
		t.Error("Core.UseConfidence did not carry")
	}
	if eopt.Core.Scope != core.ScopeAllExtractors {
		t.Errorf("Core.Scope: got %v, want ScopeAllExtractors", eopt.Core.Scope)
	}
	if eopt.Core.Tol != 0.125 {
		t.Errorf("Core.Tol: got %g, want 0.125", eopt.Core.Tol)
	}

	// The untouched core knobs must keep their defaults — the conversion
	// starts from core.DefaultOptions, not a zero struct.
	def := core.DefaultOptions()
	if eopt.Core.Gamma != def.Gamma || eopt.Core.Alpha != def.Alpha ||
		eopt.Core.InitAccuracy != def.InitAccuracy {
		t.Error("conversion disturbed core defaults it does not map")
	}

	// Sentinel flips: the booleans must map both ways, and Tol 0 defers to
	// the core default instead of declaring instant convergence.
	in.AllExtractorsVoteAbsence = false
	in.UseConfidence = false
	in.Tol = 0
	eopt, err = in.engineOptions()
	if err != nil {
		t.Fatal(err)
	}
	if eopt.Core.Scope != core.ScopeAttemptedSources {
		t.Errorf("Core.Scope: got %v, want ScopeAttemptedSources", eopt.Core.Scope)
	}
	if eopt.Core.UseConfidence {
		t.Error("Core.UseConfidence did not clear")
	}
	if eopt.Core.Tol != def.Tol {
		t.Errorf("Core.Tol with zero input: got %g, want core default %g", eopt.Core.Tol, def.Tol)
	}

	// Shards 0 keeps the engine default rather than building a shardless
	// engine.
	in.Shards = 0
	eopt, err = in.engineOptions()
	if err != nil {
		t.Fatal(err)
	}
	if eopt.Shards != 8 {
		t.Errorf("Shards default: got %d, want 8", eopt.Shards)
	}
}

// TestEngineOptionsRejects pins the validation errors of the conversion
// point.
func TestEngineOptionsRejects(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*EngineOptions)
	}{
		{"iterations", func(o *EngineOptions) { o.Iterations = 0 }},
		{"domain", func(o *EngineOptions) { o.DomainSize = 0 }},
		{"auto-granularity", func(o *EngineOptions) { o.Granularity = GranularityAuto }},
		{"unknown-granularity", func(o *EngineOptions) { o.Granularity = SourceGranularity(99) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultEngineOptions()
			tc.mutate(&opt)
			if _, err := opt.engineOptions(); err == nil {
				t.Fatal("conversion accepted invalid options")
			}
			if _, err := NewEngine(opt); err == nil {
				t.Fatal("NewEngine accepted invalid options")
			}
		})
	}
}
