module kbt

go 1.24
