package kbt

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"kbt/internal/triple"
	"kbt/internal/wal"
)

func durableTestOptions() EngineOptions {
	opt := DefaultEngineOptions()
	opt.Shards = 4
	opt.DomainSize = 5
	opt.Iterations = 3
	opt.MinSupport = 1
	opt.MinReportableTriples = 0
	opt.Tol = 1e-7
	return opt
}

// durableExtraction generates a small deterministic stream with contested
// triples: several websites and extractors voting, sometimes disagreeing, so
// the model state is non-trivial at every refresh.
func durableExtraction(i int) Extraction {
	obj := fmt.Sprintf("o%d", i%3)
	if i%7 == 0 {
		obj = "oX" // a minority of dissenting claims
	}
	return Extraction{
		Extractor:  fmt.Sprintf("E%d", i%3),
		Pattern:    "pat",
		Website:    fmt.Sprintf("w%d.com", i%4),
		Page:       fmt.Sprintf("w%d.com/p%d", i%4, i%2),
		Subject:    fmt.Sprintf("s%d", i%5),
		Predicate:  "born",
		Object:     obj,
		Confidence: 0.4 + 0.1*float64(i%6),
	}
}

// durableOp is one step of the scripted durable workload.
type durableOp struct {
	kind  string // "ingest", "refresh", "checkpoint"
	batch []Extraction
}

// durableScript is the fixed workload the crash sweep and the equality tests
// share: ingests and refreshes around two checkpoints, so the sweep crashes
// inside appends, syncs, every stage of the base and delta checkpoint
// publications, a checkpoint taken with records still pending (the
// checkpoint-during-ingest interleaving: the flush refresh, its marker, and
// the delta write all get killed at every byte), and the post-checkpoint
// unrefreshed tail.
func durableScript() []durableOp {
	batch := func(first, n int) durableOp {
		b := make([]Extraction, n)
		for i := range b {
			b[i] = durableExtraction(first + i)
		}
		return durableOp{kind: "ingest", batch: b}
	}
	return []durableOp{
		batch(0, 6),
		{kind: "refresh"},
		batch(6, 6),
		batch(12, 6),
		{kind: "refresh"},
		{kind: "checkpoint"}, // first checkpoint: writes the chain base
		batch(18, 6),
		{kind: "checkpoint"}, // pending records in flight: flush + delta append
		batch(24, 6),
		{kind: "refresh"},
	}
}

func scriptRecords(script []durableOp) []triple.Record {
	var recs []triple.Record
	for _, op := range script {
		for _, x := range op.batch {
			recs = append(recs, x.record())
		}
	}
	return recs
}

// runScript applies the script until an op fails, returning the number of
// records whose ingest was acknowledged (returned nil).
func runScript(d *DurableEngine, script []durableOp) (ackedRecords int, err error) {
	for _, op := range script {
		switch op.kind {
		case "ingest":
			if err := d.Ingest(op.batch...); err != nil {
				return ackedRecords, err
			}
			ackedRecords += len(op.batch)
		case "refresh":
			if _, err := d.Refresh(); err != nil {
				return ackedRecords, err
			}
		case "checkpoint":
			if err := d.Checkpoint(); err != nil {
				return ackedRecords, err
			}
		}
	}
	return ackedRecords, nil
}

// durableBoundary reads what a crashed directory durably holds — checkpoint
// plus decoded log tail — independently of OpenDurable's recovery, so the
// sweep can cross-check recovery against the raw bytes.
type durableBoundary struct {
	ck      *wal.Checkpoint
	entries []wal.Entry
}

func readBoundary(t *testing.T, dir string) durableBoundary {
	t.Helper()
	var b durableBoundary
	ck, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil {
		t.Fatalf("boundary checkpoint: %v", err)
	}
	if ok {
		b.ck = ck
	} else {
		b.ck = &wal.Checkpoint{}
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("boundary log open: %v", err)
	}
	defer l.Close()
	if err := l.Replay(b.ck.Watermark, func(seq uint64, payload []byte) error {
		ent, err := wal.DecodeEntry(payload)
		if err != nil {
			return err
		}
		b.entries = append(b.entries, ent)
		return nil
	}); err != nil {
		t.Fatalf("boundary replay: %v", err)
	}
	return b
}

// durableRecords flattens the boundary's record stream: the checkpoint
// chain's prefix followed by every tail batch. Keyed batches dedup exactly as
// recovery does — a key the chain or an earlier entry already carries marks a
// client resend, which replay must not apply twice.
func (b durableBoundary) records() []triple.Record {
	recs := append([]triple.Record(nil), b.ck.AllRecords()...)
	seen := make(map[string]bool)
	for i := range b.ck.Ops {
		if k := b.ck.Ops[i].Key; k != "" {
			seen[k] = true
		}
	}
	for _, ent := range b.entries {
		switch ent.Kind {
		case wal.EntryBatch, wal.EntryKeyedBatch:
			if ent.Key != "" {
				if seen[ent.Key] {
					continue
				}
				seen[ent.Key] = true
			}
			recs = append(recs, ent.Records...)
		}
	}
	return recs
}

// oracleFromBoundary builds the reference state with a plain in-memory
// Engine: the checkpoint chain's op sequence replayed faithfully — every
// recorded refresh run, none coalesced — then the tail entries in order.
// This mirrors what recovery promises to compute, using none of the durable
// plumbing; because recovery does coalesce provably-NoOp markers, every
// sweep comparison against this oracle is also a coalescing-equivalence
// check.
func oracleFromBoundary(t *testing.T, b durableBoundary, opt EngineOptions) *Engine {
	t.Helper()
	eng, err := NewEngine(opt)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := range b.ck.Ops {
		op := &b.ck.Ops[i]
		if len(op.Records) > 0 {
			if err := eng.eng.Ingest(op.Records...); err != nil {
				t.Fatalf("oracle chain ingest (op %d): %v", i, err)
			}
		}
		if op.Key != "" {
			seen[op.Key] = true
		}
		for r := 0; r < op.Refreshes; r++ {
			if eng.Len() == 0 {
				continue
			}
			if _, err := eng.Refresh(); err != nil {
				t.Fatalf("oracle chain refresh (op %d): %v", i, err)
			}
		}
	}
	for _, ent := range b.entries {
		switch ent.Kind {
		case wal.EntryBatch, wal.EntryKeyedBatch:
			// Same dedup and rejection semantics as recovery: an already-seen
			// key is a resend (skipped), a batch the engine rejects
			// contributes no state and leaves its key unrecorded.
			if ent.Key != "" && seen[ent.Key] {
				continue
			}
			if err := eng.eng.Ingest(ent.Records...); err != nil {
				continue
			}
			if ent.Key != "" {
				seen[ent.Key] = true
			}
		case wal.EntryRefresh:
			if eng.Len() == 0 {
				continue
			}
			if _, err := eng.Refresh(); err != nil {
				t.Fatalf("oracle tail refresh: %v", err)
			}
		}
	}
	return eng
}

// assertResultsIdentical compares two result views bit for bit — the
// recovery contract is exact reproduction, not tolerance-equality.
func assertResultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.TopSources(0), b.TopSources(0)) {
		t.Fatalf("%s: source views differ", label)
	}
	if !reflect.DeepEqual(a.TopTriples(0), b.TopTriples(0)) {
		t.Fatalf("%s: triple views differ", label)
	}
}

func isPrefix(short, long []triple.Record) bool {
	if len(short) > len(long) {
		return false
	}
	for i := range short {
		if short[i] != long[i] {
			return false
		}
	}
	return true
}

// TestDurableCrashSweep is the kill-at-every-byte property test: the
// scripted workload runs against a filesystem that dies after an
// ever-growing mutation budget — inside WAL appends at every byte offset,
// inside fsyncs, and inside every stage of the checkpoint publication. After
// each injected crash the directory is recovered with the real filesystem
// and checked against the raw durable boundary:
//
//   - recovery never fails on a crash-shaped directory;
//   - every acknowledged batch survives;
//   - the durable record stream is an exact prefix of the script's;
//   - the recovered result is bit-identical to a plain Engine applying the
//     durable operations — the "uninterrupted process" oracle.
func TestDurableCrashSweep(t *testing.T) {
	opt := durableTestOptions()
	script := durableScript()
	allRecs := scriptRecords(script)
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	completed := false
	budgets := 0
	for budget := int64(0); budget < 1<<20 && !completed; budget += stride {
		budgets++
		dir := t.TempDir()
		var acked int
		cfs := wal.NewCrashFS(nil, budget)
		d, err := OpenDurable(dir, opt, DurableOptions{SegmentBytes: 512, fs: cfs})
		if err == nil {
			var serr error
			acked, serr = runScript(d, script)
			completed = serr == nil
			d.Close()
		}

		rec, err := OpenDurable(dir, opt, DurableOptions{SegmentBytes: 512})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		boundary := readBoundary(t, dir)
		durableRecs := boundary.records()
		if !isPrefix(boundary.ck.AllRecords(), allRecs) {
			t.Fatalf("budget %d: checkpoint records are not a script prefix", budget)
		}
		if !isPrefix(durableRecs, allRecs) {
			t.Fatalf("budget %d: durable records are not a script prefix", budget)
		}
		if len(durableRecs) < acked {
			t.Fatalf("budget %d: %d records acked but only %d durable", budget, acked, len(durableRecs))
		}
		if rec.Len() != len(durableRecs) {
			t.Fatalf("budget %d: recovered engine holds %d records, boundary %d", budget, rec.Len(), len(durableRecs))
		}

		oracle := oracleFromBoundary(t, boundary, opt)
		or, ook := oracle.Current()
		rr, rok := rec.Current()
		if ook != rok {
			t.Fatalf("budget %d: oracle refreshed=%v, recovered refreshed=%v", budget, ook, rok)
		}
		if ook {
			assertResultsIdentical(t, fmt.Sprintf("budget %d", budget), rr, or)
		}

		// Post-recovery lockstep: the recovered engine is not just a frozen
		// replica — it continues warm exactly like the oracle.
		post := []Extraction{durableExtraction(100), durableExtraction(101), durableExtraction(102)}
		if err := rec.Ingest(post...); err != nil {
			t.Fatalf("budget %d: post-recovery ingest: %v", budget, err)
		}
		postRecs := make([]triple.Record, len(post))
		for i, x := range post {
			postRecs[i] = x.record()
		}
		if err := oracle.eng.Ingest(postRecs...); err != nil {
			t.Fatal(err)
		}
		rr2, err := rec.Refresh()
		if err != nil {
			t.Fatalf("budget %d: post-recovery refresh: %v", budget, err)
		}
		or2, err := oracle.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, fmt.Sprintf("budget %d post-recovery", budget), rr2, or2)
		rec.Close()
	}
	if !completed {
		t.Fatal("sweep never reached a budget that completes the workload")
	}
	if budgets < 100 {
		t.Fatalf("sweep covered only %d budgets — workload too small to mean anything", budgets)
	}
}

// TestDurableRecoveredEqualsLive reruns the script uninterrupted, closes,
// reopens, and demands the recovered generation be bit-identical to the one
// the live process served — with and without a checkpoint in the script.
func TestDurableRecoveredEqualsLive(t *testing.T) {
	opt := durableTestOptions()
	scripts := map[string][]durableOp{
		"with-checkpoint": durableScript(),
		"wal-only": {
			{kind: "ingest", batch: []Extraction{durableExtraction(0), durableExtraction(1), durableExtraction(2)}},
			{kind: "refresh"},
			{kind: "ingest", batch: []Extraction{durableExtraction(3), durableExtraction(4)}},
			{kind: "refresh"},
		},
	}
	for name, script := range scripts {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDurable(dir, opt, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := runScript(d, script); err != nil {
				t.Fatal(err)
			}
			live, ok := d.Current()
			if !ok {
				t.Fatal("no live generation")
			}
			liveLen, livePending := d.Len(), d.Pending()
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := OpenDurable(dir, opt, DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if rec.Len() != liveLen || rec.Pending() != livePending {
				t.Fatalf("recovered %d/%d records pending, live had %d/%d",
					rec.Len(), rec.Pending(), liveLen, livePending)
			}
			got, ok := rec.Current()
			if !ok {
				t.Fatal("no recovered generation")
			}
			assertResultsIdentical(t, name, got, live)
		})
	}
}

// TestDurableCheckpointEvery exercises the auto-checkpoint cadence: the log
// must shrink at each checkpoint and recovery must keep matching the live
// result.
func TestDurableCheckpointEvery(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	d, err := OpenDurable(dir, opt, DurableOptions{CheckpointEvery: 2, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for round := 0; round < 5; round++ {
		batch := make([]Extraction, 5)
		for i := range batch {
			batch[i] = durableExtraction(next)
			next++
		}
		if err := d.Ingest(batch...); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	ck, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after cadence: ok=%v err=%v", ok, err)
	}
	if len(ck.AllRecords()) < 15 {
		t.Fatalf("checkpoint covers only %d records", len(ck.AllRecords()))
	}
	live, _ := d.Current()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got, ok := rec.Current()
	if !ok {
		t.Fatal("no recovered generation")
	}
	assertResultsIdentical(t, "cadence", got, live)
}

// TestDurableRejectedBatch: a batch the engine rejects is logged but
// contributes no state — and deterministically contributes none on replay.
func TestDurableRejectedBatch(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	d, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(durableExtraction(0), durableExtraction(1)); err != nil {
		t.Fatal(err)
	}
	bad := durableExtraction(2)
	bad.Subject = ""
	if err := d.Ingest(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	live, _ := d.Current()
	if d.Len() != 2 {
		t.Fatalf("live engine holds %d records, want 2", d.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 2 {
		t.Fatalf("recovered engine holds %d records, want 2", rec.Len())
	}
	got, ok := rec.Current()
	if !ok {
		t.Fatal("no recovered generation")
	}
	assertResultsIdentical(t, "rejected-batch", got, live)
}

// TestDurableFingerprintMismatch: a checkpoint taken under different model
// options must refuse to load rather than silently misestimate.
func TestDurableFingerprintMismatch(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	d, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runScript(d, durableScript()); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	other := opt
	other.Iterations++
	if _, err := OpenDurable(dir, other, DurableOptions{}); err == nil {
		t.Fatal("fingerprint mismatch not detected")
	}
	// The original options still load fine.
	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
}

// copyDir clones a durable directory's files into a fresh temp dir, so two
// recoveries can run against the same crash image without sharing a log.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDurableCoalescingEquivalence fuzzes randomized schedules — ingest
// bursts, consecutive refresh runs (the coalescing target), and interleaved
// checkpoints — and demands that recovery with marker coalescing on and off
// yields bit-identical engines, before and after continuing the stream.
func TestDurableCoalescingEquivalence(t *testing.T) {
	opt := durableTestOptions()
	schedules := 6
	if testing.Short() {
		schedules = 3
	}
	for s := 0; s < schedules; s++ {
		s := s
		t.Run(fmt.Sprintf("schedule=%d", s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			dir := t.TempDir()
			d, err := OpenDurable(dir, opt, DurableOptions{SegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			next := 0
			ingest := func() {
				n := 1 + rng.Intn(6)
				b := make([]Extraction, n)
				for j := range b {
					b[j] = durableExtraction(next)
					next++
				}
				if err := d.Ingest(b...); err != nil {
					t.Fatal(err)
				}
			}
			ingest() // every schedule has at least one batch and one refresh
			if _, err := d.Refresh(); err != nil {
				t.Fatal(err)
			}
			for i, steps := 0, 10+rng.Intn(10); i < steps; i++ {
				switch rng.Intn(5) {
				case 0, 1:
					ingest()
				case 2, 3:
					for r, burst := 0, 1+rng.Intn(4); r < burst; r++ {
						if _, err := d.Refresh(); err != nil {
							t.Fatal(err)
						}
					}
				case 4:
					if err := d.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			dirOff := copyDir(t, dir)
			recOn, err := OpenDurable(dir, opt, DurableOptions{})
			if err != nil {
				t.Fatalf("coalesced recovery: %v", err)
			}
			defer recOn.Close()
			recOff, err := OpenDurable(dirOff, opt, DurableOptions{disableCoalesce: true})
			if err != nil {
				t.Fatalf("per-marker recovery: %v", err)
			}
			defer recOff.Close()

			if recOn.Len() != recOff.Len() || recOn.Pending() != recOff.Pending() {
				t.Fatalf("coalesced %d/%d records pending, per-marker %d/%d",
					recOn.Len(), recOn.Pending(), recOff.Len(), recOff.Pending())
			}
			on, onOK := recOn.Current()
			off, offOK := recOff.Current()
			if onOK != offOK {
				t.Fatalf("coalesced refreshed=%v, per-marker refreshed=%v", onOK, offOK)
			}
			if onOK {
				assertResultsIdentical(t, "recovered", on, off)
			}
			// Lockstep continuation: both recoveries keep evolving identically.
			post := []Extraction{durableExtraction(next), durableExtraction(next + 1)}
			if err := recOn.Ingest(post...); err != nil {
				t.Fatal(err)
			}
			if err := recOff.Ingest(post...); err != nil {
				t.Fatal(err)
			}
			on2, err := recOn.Refresh()
			if err != nil {
				t.Fatal(err)
			}
			off2, err := recOff.Refresh()
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, "post-recovery", on2, off2)
		})
	}
}

// TestDurableCheckpointDuringIngest races a checkpoint loop against an
// ingest/refresh stream under crash injection: whatever interleaving the
// crash lands in, recovery must hold every acknowledged batch — a
// checkpoint concurrent with in-flight acked batches never loses an ack.
func TestDurableCheckpointDuringIngest(t *testing.T) {
	opt := durableTestOptions()
	unique := func(i int) Extraction {
		x := durableExtraction(i)
		x.Subject = fmt.Sprintf("u%d", i) // globally unique → set membership below
		return x
	}
	stride := int64(3)
	if testing.Short() {
		stride = 23
	}
	completed := false
	for budget := int64(0); budget < 1<<20 && !completed; budget += stride {
		dir := t.TempDir()
		cfs := wal.NewCrashFS(nil, budget)
		var (
			mu    sync.Mutex
			acked []triple.Record
		)
		d, err := OpenDurable(dir, opt, DurableOptions{SegmentBytes: 512, fs: cfs})
		if err == nil {
			var wg sync.WaitGroup
			ingestDone, ckptDone := false, false
			wg.Add(2)
			go func() {
				defer wg.Done()
				id := 0
				for i := 0; i < 8; i++ {
					b := []Extraction{unique(id), unique(id + 1)}
					id += 2
					if err := d.Ingest(b...); err != nil {
						return
					}
					mu.Lock()
					for _, x := range b {
						acked = append(acked, x.record())
					}
					mu.Unlock()
					if i%3 == 2 {
						if _, err := d.Refresh(); err != nil {
							return
						}
					}
				}
				ingestDone = true
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					if err := d.Checkpoint(); err != nil {
						return
					}
				}
				ckptDone = true
			}()
			wg.Wait()
			d.Close()
			completed = ingestDone && ckptDone
		}

		rec, err := OpenDurable(dir, opt, DurableOptions{SegmentBytes: 512})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		boundary := readBoundary(t, dir)
		have := make(map[triple.Record]bool, rec.Len())
		for _, r := range boundary.records() {
			have[r] = true
		}
		mu.Lock()
		for _, r := range acked {
			if !have[r] {
				t.Fatalf("budget %d: acked record %v lost by checkpoint-during-ingest crash", budget, r)
			}
		}
		mu.Unlock()
		// And the recovered engine itself serves those records, not just the
		// raw boundary: a full oracle comparison like the scripted sweep's.
		oracle := oracleFromBoundary(t, boundary, opt)
		or, ook := oracle.Current()
		rr, rok := rec.Current()
		if ook != rok {
			t.Fatalf("budget %d: oracle refreshed=%v, recovered refreshed=%v", budget, ook, rok)
		}
		if ook {
			assertResultsIdentical(t, fmt.Sprintf("budget %d concurrent", budget), rr, or)
		}
		rec.Close()
	}
	if !completed {
		t.Fatal("sweep never reached a budget that completes the concurrent workload")
	}
}

// TestDurableCheckpointBytes: the size cadence takes checkpoints on its own —
// including after pure ingests, where the checkpoint flushes the pending
// records through an implicit refresh — and recovery still matches.
func TestDurableCheckpointBytes(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	d, err := OpenDurable(dir, opt, DurableOptions{CheckpointBytes: 1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for round := 0; round < 4; round++ {
		batch := make([]Extraction, 5)
		for i := range batch {
			batch[i] = durableExtraction(next)
			next++
		}
		// No explicit Refresh: the size cadence must both checkpoint and
		// refresh the pending records in.
		if err := d.Ingest(batch...); err != nil {
			t.Fatal(err)
		}
		if p := d.Pending(); p != 0 {
			t.Fatalf("round %d: %d records still pending after size-triggered checkpoint", round, p)
		}
	}
	ck, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after size cadence: ok=%v err=%v", ok, err)
	}
	if got := len(ck.AllRecords()); got != next {
		t.Fatalf("chain covers %d records, want %d", got, next)
	}
	live, _ := d.Current()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got, ok := rec.Current()
	if !ok {
		t.Fatal("no recovered generation")
	}
	assertResultsIdentical(t, "size-cadence", got, live)
}

// TestDurableCompaction: the chain grows by deltas until CompactAfterBatches,
// then collapses to a single cold-anchor base with no delta files left, and
// recovery keeps matching the live engine across the compaction boundary.
func TestDurableCompaction(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	d, err := OpenDurable(dir, opt, DurableOptions{CompactAfterBatches: 3})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	step := func() {
		t.Helper()
		batch := make([]Extraction, 4)
		for i := range batch {
			batch[i] = durableExtraction(next)
			next++
		}
		if err := d.Ingest(batch...); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Refresh(); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	countDeltas := func() int {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range ents {
			name := e.Name()
			if len(name) > 6 && name[len(name)-6:] == ".delta" {
				n++
			}
		}
		return n
	}
	step() // base: 1 batch op
	if n := countDeltas(); n != 0 {
		t.Fatalf("first checkpoint left %d deltas, want 0", n)
	}
	step() // delta: 2 batch ops on the chain
	if n := countDeltas(); n != 1 {
		t.Fatalf("second checkpoint left %d deltas, want 1", n)
	}
	step() // 3 >= CompactAfterBatches: compaction
	if n := countDeltas(); n != 0 {
		t.Fatalf("compaction left %d deltas, want 0", n)
	}
	ck, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after compaction: ok=%v err=%v", ok, err)
	}
	if len(ck.Ops) != 1 || len(ck.Ops[0].Records) != next || ck.Ops[0].Refreshes != 1 {
		t.Fatalf("compacted chain is not a single cold-anchor op: %d ops", len(ck.Ops))
	}
	live, _ := d.Current()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got, ok := rec.Current()
	if !ok {
		t.Fatal("no recovered generation")
	}
	assertResultsIdentical(t, "compaction", got, live)
}

// TestDurableClosed: mutators fail cleanly after Close, reads keep serving.
func TestDurableClosed(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, durableTestOptions(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(durableExtraction(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(durableExtraction(1)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Ingest after Close: %v", err)
	}
	if _, err := d.Refresh(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Refresh after Close: %v", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
	if _, ok := d.Current(); !ok {
		t.Fatal("Current stopped serving after Close")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestDurableCheckpointInterval: the wall-clock cadence (driven here by a
// fake clock) takes a checkpoint only once the interval has elapsed since the
// last one, on either Ingest or Refresh, and re-anchors after each trigger.
func TestDurableCheckpointInterval(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	d, err := OpenDurable(dir, opt, DurableOptions{
		CheckpointInterval: time.Minute,
		SegmentBytes:       256,
		now:                clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	ingest := func(n int) {
		t.Helper()
		batch := make([]Extraction, n)
		for i := range batch {
			batch[i] = durableExtraction(next)
			next++
		}
		if err := d.Ingest(batch...); err != nil {
			t.Fatal(err)
		}
	}

	// Inside the interval: no checkpoint, regardless of activity.
	ingest(5)
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(59 * time.Second)
	ingest(5)
	if _, ok, err := wal.ReadCheckpoint(nil, dir); err != nil || ok {
		t.Fatalf("checkpoint inside the interval: ok=%v err=%v", ok, err)
	}

	// Crossing the interval: the next Ingest both checkpoints and flushes
	// the pending records through the implicit refresh.
	now = now.Add(2 * time.Second)
	ingest(5)
	ck, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after the interval elapsed: ok=%v err=%v", ok, err)
	}
	if got := len(ck.AllRecords()); got != next {
		t.Fatalf("checkpoint covers %d records, want %d", got, next)
	}
	if p := d.Pending(); p != 0 {
		t.Fatalf("%d records still pending after interval-triggered checkpoint", p)
	}

	// The trigger re-anchored the cadence: more activity inside the fresh
	// interval stays checkpoint-free, and a Refresh past it triggers again.
	ingest(5)
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	ck2, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil || !ok {
		t.Fatal("first checkpoint vanished")
	}
	if got := len(ck2.AllRecords()); got != 15 {
		t.Fatalf("checkpoint moved inside the interval: covers %d records", got)
	}
	now = now.Add(61 * time.Second)
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	ck3, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil || !ok {
		t.Fatal("no second interval checkpoint")
	}
	if got := len(ck3.AllRecords()); got != next {
		t.Fatalf("second checkpoint covers %d records, want %d", got, next)
	}

	live, _ := d.Current()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got, ok := rec.Current()
	if !ok {
		t.Fatal("no recovered generation")
	}
	assertResultsIdentical(t, "interval-cadence", got, live)
}

// durableBatch builds a batch of n sequential scripted extractions.
func durableBatch(first, n int) []Extraction {
	b := make([]Extraction, n)
	for i := range b {
		b[i] = durableExtraction(first + i)
	}
	return b
}

// TestDurableHealthDegradeAndHeal walks the health machine end to end with a
// fake clock: a transient fsync fault degrades the engine to read-only, reads
// keep serving the last generation, mutators fail fast (without touching the
// disk) until the backoff elapses, and the first successful probe round-trip
// heals it — after which the client's keyed retry applies exactly once.
func TestDurableHealthDegradeAndHeal(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	// Sync 0 is segment creation; sync 1 acks the first batch; sync 2 — the
	// one covering the second batch — fails once.
	ffs := wal.NewFaultFS(nil, wal.Fault{Op: wal.OpSync, After: 2, Err: wal.ErrInjectedIO, Times: 1})
	var transitions []string
	d, err := OpenDurable(dir, opt, DurableOptions{
		fs:              ffs,
		now:             clock,
		ProbeBackoff:    time.Second,
		ProbeMaxBackoff: 8 * time.Second,
		OnHealthChange: func(from, to HealthState, cause error) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Ingest(durableBatch(0, 3)...); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	gen, ok := d.Current()
	if !ok {
		t.Fatal("no generation before the fault")
	}

	// The faulted ingest: typed error, degraded state, a populated report.
	retry := durableBatch(3, 3)
	if err := d.IngestKeyed("retry-1", retry...); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("faulted ingest: %v, want ErrReadOnly", err)
	}
	st := d.Health()
	if st.State != StateDegraded || st.State.String() != "degraded" {
		t.Fatalf("state after fault: %v", st.State)
	}
	if st.Faults != 1 || st.Heals != 0 || st.LastFault == "" {
		t.Fatalf("fault counters: %+v", st)
	}
	if st.RetryAfter <= 0 || st.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v", st.RetryAfter)
	}
	// Reads keep serving the pre-fault generation.
	if cur, ok := d.Current(); !ok || cur != gen {
		t.Fatal("degraded engine stopped serving the last generation")
	}
	if _, ok := d.TopSources(3); !ok {
		t.Fatal("degraded engine stopped serving rankings")
	}

	// Before the backoff elapses, mutators fail fast without a disk probe.
	syncs := ffs.Calls(wal.OpSync)
	if err := d.IngestKeyed("retry-1", retry...); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("fast-fail ingest: %v", err)
	}
	if _, err := d.Refresh(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("fast-fail refresh: %v", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("fast-fail checkpoint: %v", err)
	}
	if got := ffs.Calls(wal.OpSync); got != syncs {
		t.Fatalf("fast-fail path touched the disk: %d syncs, was %d", got, syncs)
	}

	// Past the backoff, the probe round-trip heals and the retry applies.
	now = now.Add(1100 * time.Millisecond)
	if err := d.IngestKeyed("retry-1", retry...); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	st = d.Health()
	if st.State != StateHealthy || st.Heals != 1 {
		t.Fatalf("state after heal: %+v", st)
	}
	if d.Len() != 6 {
		t.Fatalf("engine holds %d records, want 6", d.Len())
	}
	// The duplicate resend of the now-applied key is a no-op ack.
	if err := d.IngestKeyed("retry-1", retry...); err != nil || d.Len() != 6 {
		t.Fatalf("dup resend: err=%v len=%d", err, d.Len())
	}
	want := []string{"healthy->degraded", "degraded->healthy"}
	if !reflect.DeepEqual(transitions, want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}

	// The torn first attempt never becomes durable: a clean recovery holds
	// each acked record exactly once and still dedups the key.
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	if rec.Len() != 6 {
		t.Fatalf("recovered %d records, want 6", rec.Len())
	}
	if err := rec.IngestKeyed("retry-1", retry...); err != nil || rec.Len() != 6 {
		t.Fatalf("post-recovery resend: err=%v len=%d", err, rec.Len())
	}
}

// TestDurableHealthProbeBackoff: failed probes double the delay up to the cap,
// every probe failure counts a fault, and the engine stays degraded — never
// sealed — under a plain persistent EIO.
func TestDurableHealthProbeBackoff(t *testing.T) {
	opt := durableTestOptions()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	// Persistent: every fsync after segment creation fails, forever.
	ffs := wal.NewFaultFS(nil, wal.Fault{Op: wal.OpSync, After: 1, Err: wal.ErrInjectedIO})
	d, err := OpenDurable(t.TempDir(), opt, DurableOptions{
		fs: ffs, now: clock, ProbeBackoff: time.Second, ProbeMaxBackoff: 4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Ingest(durableBatch(0, 2)...); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("first ingest: %v", err)
	}
	wantDelays := []time.Duration{1, 2, 4, 4, 4} // seconds; doubling, capped
	for i, sec := range wantDelays {
		st := d.Health()
		if st.State != StateDegraded {
			t.Fatalf("probe %d: state %v", i, st.State)
		}
		if st.RetryAfter != sec*time.Second {
			t.Fatalf("probe %d: RetryAfter %v, want %vs", i, st.RetryAfter, sec)
		}
		now = now.Add(sec*time.Second + time.Millisecond)
		if err := d.Ingest(durableBatch(0, 2)...); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	st := d.Health()
	if st.Faults != uint64(1+len(wantDelays)) || st.Heals != 0 {
		t.Fatalf("counters after failed probes: %+v", st)
	}
}

// TestDurableHealthSealedOnCorruption: a fault classified as sealed-region
// corruption moves the engine to the terminal readonly state — no probes, no
// heals, reads still serving.
func TestDurableHealthSealedOnCorruption(t *testing.T) {
	opt := durableTestOptions()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	ffs := wal.NewFaultFS(nil, wal.Fault{Op: wal.OpSync, After: 2, Err: wal.ErrCorrupt, Times: 1})
	var transitions []string
	d, err := OpenDurable(t.TempDir(), opt, DurableOptions{
		fs: ffs, now: clock, ProbeBackoff: time.Second,
		OnHealthChange: func(from, to HealthState, cause error) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Ingest(durableBatch(0, 3)...); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	err = d.Ingest(durableBatch(3, 2)...)
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("sealing fault: %v, want ErrReadOnly wrapping wal.ErrCorrupt", err)
	}
	st := d.Health()
	if st.State != StateSealed || st.State.String() != "readonly" {
		t.Fatalf("state: %v", st.State)
	}
	// No amount of waiting probes a sealed engine.
	calls := ffs.Calls(wal.OpSync)
	now = now.Add(time.Hour)
	if err := d.Ingest(durableBatch(5, 1)...); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("sealed ingest: %v", err)
	}
	if got := ffs.Calls(wal.OpSync); got != calls {
		t.Fatal("sealed engine probed the disk")
	}
	if _, ok := d.Current(); !ok {
		t.Fatal("sealed engine stopped serving reads")
	}
	if want := []string{"healthy->readonly"}; !reflect.DeepEqual(transitions, want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

// TestDurableIdempotencyAcrossRecovery: the dedup set survives restarts via
// both persistence paths — a key compacted into a checkpoint op and a key
// still in the WAL tail — while a key whose batch was rejected is free to
// retry with corrected data.
func TestDurableIdempotencyAcrossRecovery(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	d, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.IngestKeyed("in-chain", durableBatch(0, 3)...); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // "in-chain" rides a checkpoint op
		t.Fatal(err)
	}
	if err := d.IngestKeyed("in-tail", durableBatch(3, 2)...); err != nil {
		t.Fatal(err)
	}
	bad := durableExtraction(9)
	bad.Subject = ""
	if err := d.IngestKeyed("rejected", bad); err == nil {
		t.Fatal("invalid keyed batch accepted")
	}
	// A rejected batch's key is not recorded: the resend earns the same
	// deterministic rejection, twice over in the log.
	if err := d.IngestKeyed("rejected", bad); err == nil {
		t.Fatal("invalid resend accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 5 {
		t.Fatalf("recovered %d records, want 5", rec.Len())
	}
	for _, key := range []string{"in-chain", "in-tail"} {
		if err := rec.IngestKeyed(key, durableBatch(20, 2)...); err != nil {
			t.Fatalf("resend of %s: %v", key, err)
		}
		if rec.Len() != 5 {
			t.Fatalf("resend of %s re-applied: %d records", key, rec.Len())
		}
	}
	// The rejected key never made it into the dedup set, live or recovered,
	// so a corrected batch under it applies.
	if err := rec.IngestKeyed("rejected", durableBatch(30, 1)...); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 6 {
		t.Fatalf("corrected retry did not apply: %d records", rec.Len())
	}
}

// TestEngineIngestKeyed: the in-memory engine honours the same live dedup
// contract (without persistence) so multi-lane servers behave identically
// whether or not a durable directory is configured.
func TestEngineIngestKeyed(t *testing.T) {
	e, err := NewEngine(durableTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestKeyed("k", durableBatch(0, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestKeyed("k", durableBatch(3, 3)...); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 3 {
		t.Fatalf("duplicate key applied: %d records", e.Len())
	}
	bad := durableExtraction(0)
	bad.Subject = ""
	if err := e.IngestKeyed("k2", bad); err == nil {
		t.Fatal("invalid keyed batch accepted")
	}
	if err := e.IngestKeyed("k2", durableBatch(3, 2)...); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 5 {
		t.Fatalf("rejected key blocked its retry: %d records", e.Len())
	}
	if err := e.IngestKeyed("", durableBatch(5, 1)...); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 6 {
		t.Fatalf("empty key must not dedup: %d records", e.Len())
	}
}

// TestDurableChaosSweep is the survivable-fault analogue of the crash sweep:
// randomized schedules of transient (and sometimes persistent) EIO/ENOSPC
// faults — torn short writes included — run under a retrying client that
// tags every batch with an idempotency key. Throughout:
//
//   - every mutator failure is typed (errors.Is ErrReadOnly);
//   - duplicate resends of acked keys are applied exactly once;
//   - the engine either heals (transient schedules must) and then matches a
//     never-faulted oracle bit for bit, or stays cleanly read-only;
//   - a final recovery through a clean filesystem holds every acked batch
//     exactly once, resurrects nothing unacknowledged, and matches the
//     boundary oracle.
func TestDurableChaosSweep(t *testing.T) {
	opt := durableTestOptions()
	schedules := 10
	if testing.Short() {
		schedules = 5
	}
	unique := func(i int) Extraction {
		x := durableExtraction(i)
		x.Subject = fmt.Sprintf("u%d", i) // globally unique → exact multiset checks
		return x
	}
	for s := 0; s < schedules; s++ {
		s := s
		t.Run(fmt.Sprintf("schedule=%d", s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + s)))
			persistent := s%3 == 2
			classes := []wal.FaultOp{wal.OpWrite, wal.OpSync, wal.OpSyncDir, wal.OpCreate, wal.OpRename}
			errsPool := []error{wal.ErrInjectedIO, wal.ErrInjectedNoSpace}
			var faults []wal.Fault
			for i, n := 0, 1+rng.Intn(4); i < n; i++ {
				ft := wal.Fault{
					Op:    classes[rng.Intn(len(classes))],
					After: 2 + rng.Intn(40),
					Err:   errsPool[rng.Intn(len(errsPool))],
					Times: 1 + rng.Intn(3),
				}
				if ft.Op == wal.OpWrite {
					ft.ShortBytes = rng.Intn(12)
				}
				faults = append(faults, ft)
			}
			if persistent {
				faults = append(faults, wal.Fault{Op: wal.OpSync, After: 25 + rng.Intn(15), Err: wal.ErrInjectedIO})
			}
			ffs := wal.NewFaultFS(nil, faults...)

			// Deterministic auto-advancing clock: every engine clock read
			// moves time forward, so probe backoffs elapse across retries
			// without wall-clock sleeps.
			now := time.Unix(1_700_000_000, 0)
			clock := func() time.Time { now = now.Add(300 * time.Millisecond); return now }
			dopt := DurableOptions{
				SegmentBytes:        512,
				CompactAfterBatches: -1, // no re-anchor: keeps live-vs-oracle bit-identity exact
				ProbeBackoff:        200 * time.Millisecond,
				ProbeMaxBackoff:     2 * time.Second,
				fs:                  ffs,
				now:                 clock,
			}
			dir := t.TempDir()
			var d *DurableEngine
			var err error
			for attempt := 0; attempt < 8; attempt++ {
				if d, err = OpenDurable(dir, opt, dopt); err == nil {
					break
				}
			}
			if err != nil {
				t.Fatalf("open never succeeded: %v", err)
			}
			defer d.Close()

			oracle, err := NewEngine(opt)
			if err != nil {
				t.Fatal(err)
			}
			oracleRefresh := func() {
				t.Helper()
				if _, err := oracle.Refresh(); err != nil {
					t.Fatalf("oracle refresh: %v", err)
				}
			}
			// syncOracle detects a refresh that reached the live engine even
			// though its marker (or its checkpoint) then faulted: the
			// published generation moved, so the oracle must move too.
			syncOracle := func(prev *Result) {
				t.Helper()
				if cur, ok := d.Current(); ok && cur != prev {
					oracleRefresh()
				}
			}
			ackedRecs := make(map[triple.Record]bool)
			next := 0
			for step := 0; step < 40; step++ {
				switch rng.Intn(5) {
				case 0, 1, 2: // keyed ingest with bounded retries
					key := fmt.Sprintf("op-%d", step)
					n := 1 + rng.Intn(3)
					b := make([]Extraction, n)
					recs := make([]triple.Record, n)
					for j := range b {
						b[j] = unique(next)
						recs[j] = b[j].record()
						next++
					}
					acked := false
					for attempt := 0; attempt < 8 && !acked; attempt++ {
						err := d.IngestKeyed(key, b...)
						if err == nil {
							acked = true
						} else if !errors.Is(err, ErrReadOnly) {
							t.Fatalf("step %d: untyped ingest error: %v", step, err)
						}
					}
					if !acked {
						continue
					}
					// Exactly-once: the resend of an acked key is a pure ack.
					before := d.Len()
					if err := d.IngestKeyed(key, b...); err != nil {
						t.Fatalf("step %d: resend of acked key: %v", step, err)
					}
					if d.Len() != before {
						t.Fatalf("step %d: duplicate resend applied again", step)
					}
					if err := oracle.eng.Ingest(recs...); err != nil {
						t.Fatal(err)
					}
					for _, r := range recs {
						ackedRecs[r] = true
					}
				case 3: // refresh
					if d.Len() == 0 {
						continue
					}
					prev, _ := d.Current()
					applied := false
					for attempt := 0; attempt < 8 && !applied; attempt++ {
						if _, err := d.Refresh(); err == nil {
							applied = true
						} else if !errors.Is(err, ErrReadOnly) {
							t.Fatalf("step %d: untyped refresh error: %v", step, err)
						} else if cur, ok := d.Current(); ok && cur != prev {
							applied = true // ran, then its marker tore
						}
					}
					if applied {
						oracleRefresh()
					}
				case 4: // checkpoint; its flush refresh may publish even on failure
					prev, _ := d.Current()
					for attempt := 0; attempt < 8; attempt++ {
						err := d.Checkpoint()
						if err == nil {
							break
						}
						if !errors.Is(err, ErrReadOnly) {
							t.Fatalf("step %d: untyped checkpoint error: %v", step, err)
						}
					}
					syncOracle(prev)
				}
			}

			// Drive to a terminal state: a full Checkpoint round-trip proves
			// the engine healed; a persistent fault keeps it read-only.
			healed := false
			for attempt := 0; attempt < 30 && !healed; attempt++ {
				prev, _ := d.Current()
				err := d.Checkpoint()
				if err == nil {
					healed = true
				} else if !errors.Is(err, ErrReadOnly) {
					t.Fatalf("terminal checkpoint: untyped error: %v", err)
				}
				syncOracle(prev)
			}

			if healed {
				st := d.Health()
				if st.State != StateHealthy {
					t.Fatalf("checkpoint succeeded but health is %v", st.State)
				}
				if d.Len() != oracle.Len() {
					t.Fatalf("live %d records, oracle %d", d.Len(), oracle.Len())
				}
				rr, rok := d.Current()
				or, ook := oracle.Current()
				if rok != ook {
					t.Fatalf("live refreshed=%v, oracle refreshed=%v", rok, ook)
				}
				if rok {
					assertResultsIdentical(t, "live-vs-oracle", rr, or)
				}
			} else {
				if !persistent {
					t.Fatalf("transient schedule never healed: %+v", d.Health())
				}
				// Cleanly read-only: typed failures, reads still serving.
				if err := d.Ingest(unique(next)); !errors.Is(err, ErrReadOnly) {
					t.Fatalf("read-only ingest: %v", err)
				}
				st := d.Health()
				if st.State == StateHealthy || st.Faults == 0 || st.LastFault == "" {
					t.Fatalf("inconsistent read-only health: %+v", st)
				}
			}
			d.Close()

			// Recovery through a clean filesystem: acked batches exactly once,
			// nothing unacknowledged resurrected, result matching the oracle
			// built from the raw durable boundary.
			rec, err := OpenDurable(dir, opt, DurableOptions{})
			if err != nil {
				t.Fatalf("clean recovery: %v", err)
			}
			defer rec.Close()
			boundary := readBoundary(t, dir)
			counts := make(map[triple.Record]int)
			for _, r := range boundary.records() {
				counts[r]++
			}
			for r := range ackedRecs {
				if counts[r] != 1 {
					t.Fatalf("acked record %v appears %d times after recovery", r, counts[r])
				}
			}
			for r, n := range counts {
				if n != 1 {
					t.Fatalf("record %v duplicated %d times", r, n)
				}
				if !ackedRecs[r] {
					t.Fatalf("unacked record %v resurrected by recovery", r)
				}
			}
			if rec.Len() != len(counts) {
				t.Fatalf("recovered %d records, boundary %d", rec.Len(), len(counts))
			}
			bOracle := oracleFromBoundary(t, boundary, opt)
			rr, rok := rec.Current()
			or, ook := bOracle.Current()
			if rok != ook {
				t.Fatalf("recovered refreshed=%v, boundary oracle refreshed=%v", rok, ook)
			}
			if rok {
				assertResultsIdentical(t, "recovered-vs-boundary", rr, or)
			}
		})
	}
}

// TestDurableCompactionPreservesKeys: compaction folds the chain into one
// record op, which would drop the per-op idempotency keys — so the retained
// key set must ride the rebuilt base explicitly, and a resend racing a
// compaction + restart must still be applied exactly once.
func TestDurableCompactionPreservesKeys(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	d, err := OpenDurable(dir, opt, DurableOptions{CompactAfterBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k-0", "k-1", "k-2"}
	next := 0
	for _, key := range keys {
		if err := d.IngestKeyed(key, durableBatch(next, 2)...); err != nil {
			t.Fatal(err)
		}
		next += 2
		if _, err := d.Refresh(); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil { // 2nd and 3rd checkpoints compact
			t.Fatal(err)
		}
	}
	// The compacted base is one record op plus one key-only op per retained
	// key — nothing else would survive the chain being replaced.
	ck, ok, err := wal.ReadCheckpoint(nil, dir)
	if err != nil || !ok {
		t.Fatalf("read chain: ok=%v err=%v", ok, err)
	}
	if ck.Batches() != 1 || len(ck.AllRecords()) != next {
		t.Fatalf("compacted chain: %d batch ops, %d records", ck.Batches(), len(ck.AllRecords()))
	}
	var carried []string
	for i := range ck.Ops {
		if len(ck.Ops[i].Records) == 0 && ck.Ops[i].Key != "" {
			carried = append(carried, ck.Ops[i].Key)
		}
	}
	if !reflect.DeepEqual(carried, keys) {
		t.Fatalf("base carries keys %v, want %v", carried, keys)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurable(dir, opt, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != next {
		t.Fatalf("recovered %d records, want %d", rec.Len(), next)
	}
	for _, key := range keys {
		if err := rec.IngestKeyed(key, durableBatch(50, 2)...); err != nil {
			t.Fatalf("resend of %s: %v", key, err)
		}
	}
	if rec.Len() != next {
		t.Fatalf("post-compaction resend re-applied: %d records, want %d", rec.Len(), next)
	}
}

// TestDurableHealthHealsWithoutWrites: a degraded engine whose only traffic
// is Health() polling (the load-balancer-drained shape: 503 healthz means no
// writes ever arrive) still probes once the backoff elapses and heals — and a
// closed engine's Health never touches the disk.
func TestDurableHealthHealsWithoutWrites(t *testing.T) {
	opt := durableTestOptions()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	// Sync 0 is segment creation, sync 1 acks the first batch, sync 2 fails
	// once; the disk is healthy again from sync 3 on.
	ffs := wal.NewFaultFS(nil, wal.Fault{Op: wal.OpSync, After: 2, Err: wal.ErrInjectedIO, Times: 1})
	d, err := OpenDurable(t.TempDir(), opt, DurableOptions{
		fs: ffs, now: clock, ProbeBackoff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Ingest(durableBatch(0, 2)...); err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(durableBatch(2, 2)...); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("faulted ingest: %v", err)
	}
	// Before the backoff elapses, Health reports without probing.
	syncs := ffs.Calls(wal.OpSync)
	if st := d.Health(); st.State != StateDegraded || st.RetryAfter <= 0 {
		t.Fatalf("degraded report: %+v", st)
	}
	if got := ffs.Calls(wal.OpSync); got != syncs {
		t.Fatalf("early Health probed the disk: %d syncs, was %d", got, syncs)
	}
	// Past the backoff, the Health call itself runs the probe and heals —
	// no mutator ever arrives.
	now = now.Add(1100 * time.Millisecond)
	if st := d.Health(); st.State != StateHealthy || st.Heals != 1 {
		t.Fatalf("Health did not heal: %+v", st)
	}
	if err := d.Ingest(durableBatch(2, 2)...); err != nil {
		t.Fatalf("ingest after Health-driven heal: %v", err)
	}

	// A degraded engine that is closed stays quiet: Health reports, but never
	// probes a closed log.
	ffs2 := wal.NewFaultFS(nil, wal.Fault{Op: wal.OpSync, After: 1, Err: wal.ErrInjectedIO})
	d2, err := OpenDurable(t.TempDir(), opt, DurableOptions{
		fs: ffs2, now: clock, ProbeBackoff: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Ingest(durableBatch(0, 1)...); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("faulted ingest: %v", err)
	}
	d2.Close()
	syncs = ffs2.Calls(wal.OpSync)
	now = now.Add(time.Minute)
	if st := d2.Health(); st.State != StateDegraded {
		t.Fatalf("closed engine state: %v", st.State)
	}
	if got := ffs2.Calls(wal.OpSync); got != syncs {
		t.Fatal("closed engine's Health probed the disk")
	}
}

// TestDurableKeyRetention: the dedup set keeps only the most recent
// KeyRetention keys — an evicted key's resend applies as a new batch (the
// documented retry window), and recovery replay reproduces the same bounded
// set, so live and recovered engines agree on which resends dedup.
func TestDurableKeyRetention(t *testing.T) {
	opt := durableTestOptions()
	dir := t.TempDir()
	dopt := DurableOptions{KeyRetention: 2}
	d, err := OpenDurable(dir, opt, dopt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.IngestKeyed(fmt.Sprintf("k-%d", i), durableExtraction(i)); err != nil {
			t.Fatal(err)
		}
	}
	// k-0 is evicted (window is 2): its resend is past the retry window and
	// applies; k-2 is retained and dedups.
	if err := d.IngestKeyed("k-2", durableExtraction(10)); err != nil || d.Len() != 3 {
		t.Fatalf("retained key re-applied: err=%v len=%d", err, d.Len())
	}
	if err := d.IngestKeyed("k-0", durableExtraction(11)); err != nil || d.Len() != 4 {
		t.Fatalf("evicted key did not re-apply: err=%v len=%d", err, d.Len())
	}
	if _, err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay walks the same keyed sequence through the same bounded ring:
	// the recovered window is {k-2, k-0}, exactly the live engine's.
	rec, err := OpenDurable(dir, opt, dopt)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 4 {
		t.Fatalf("recovered %d records, want 4", rec.Len())
	}
	for _, key := range []string{"k-2", "k-0"} {
		if err := rec.IngestKeyed(key, durableExtraction(20)); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Len() != 4 {
		t.Fatalf("retained keys re-applied after recovery: %d records", rec.Len())
	}
	if err := rec.IngestKeyed("k-1", durableExtraction(21)); err != nil || rec.Len() != 5 {
		t.Fatalf("evicted key did not re-apply after recovery: err=%v len=%d", err, rec.Len())
	}
}

// TestCheckpointFaultClassification: only storage faults inside a checkpoint
// degrade the engine; a model error surfaces unchanged and leaves health
// alone — no flapping between a healthy disk's probe heals and the next
// checkpoint's spurious degrade.
func TestCheckpointFaultClassification(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), durableTestOptions(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	modelErr := errors.New("model exploded")
	d.mu.Lock()
	if got := d.faultLocked(modelErr); got != modelErr {
		d.mu.Unlock()
		t.Fatalf("model error rewritten: %v", got)
	}
	if HealthState(d.health.Load()) != StateHealthy {
		d.mu.Unlock()
		t.Fatal("model error degraded the engine")
	}
	diskErr := errors.New("disk exploded")
	got := d.faultLocked(&storageFault{diskErr})
	state := HealthState(d.health.Load())
	d.mu.Unlock()
	if !errors.Is(got, ErrReadOnly) || !errors.Is(got, diskErr) {
		t.Fatalf("storage fault: %v, want ErrReadOnly wrapping the cause", got)
	}
	if state != StateDegraded {
		t.Fatalf("storage fault left state %v, want degraded", state)
	}
}
